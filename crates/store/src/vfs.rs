//! The storage virtual filesystem: every byte `taco_store` puts on (or
//! reads off) a disk goes through a [`Vfs`], so the persistence stack
//! has exactly one seam where I/O can fail — and one place to inject
//! those failures deterministically.
//!
//! Two implementations:
//!
//! - [`StdVfs`] — production: thin forwarding to `std::fs`, with one
//!   deliberate strengthening: [`Vfs::sync_parent_dir`] really fsyncs
//!   the directory, so a snapshot rename or a fresh WAL file is durable
//!   across power loss (POSIX makes no such promise until the parent
//!   directory entry is synced);
//! - [`FaultVfs`] — a fully in-memory simulated disk with a seeded
//!   [`FaultPlan`]: short writes, failed fsyncs, ENOSPC after a byte
//!   budget, failed renames, and **crash points** — freeze the durable
//!   image at the n-th I/O operation and reopen from exactly what a
//!   real machine would have found after power loss.
//!
//! ## The simulated durability model
//!
//! `FaultVfs` tracks two views of every file: the **live** bytes (what
//! the running process reads back) and the **durable** bytes (what
//! survives a crash). A file `sync` copies live → durable for that
//! file. Namespace operations — `rename` and `remove` — take effect in
//! the live view immediately but join a *pending* list that only
//! commits to the durable view on [`Vfs::sync_parent_dir`]: exactly the
//! lost-rename window the parent-directory fsync exists to close. At a
//! crash point the durable image is frozen, except that a seeded prefix
//! of each file's unsynced appended tail is retained — the classic torn
//! WAL tail. [`FaultVfs::reopen_from_crash`] then yields a fresh vfs
//! whose live view *is* that frozen image, so recovery code runs
//! against precisely the post-crash disk.
//!
//! Every injected fault is counted ([`FaultVfs::hits`]), logged
//! ([`FaultVfs::fault_log`]), and optionally exported as
//! `taco_vfs_faults_total{kind="…"}` counters via
//! [`FaultVfs::attach_obs`].

use crate::StoreError;
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// An open writable file. Writes always append at the current end of
/// the file; [`VfsFile::set_len`] truncates and subsequent writes
/// append at the new end — the only two shapes the WAL and snapshot
/// writers need, and a model under which "torn tail" has an exact
/// meaning.
pub trait VfsFile: Send {
    /// Appends `buf` at the end of the file.
    fn write_all(&mut self, buf: &[u8]) -> Result<(), StoreError>;
    /// Truncates (or extends with zeroes) to `len` bytes.
    fn set_len(&mut self, len: u64) -> Result<(), StoreError>;
    /// Durably flushes the file's content (fsync).
    fn sync(&mut self) -> Result<(), StoreError>;
}

/// A filesystem namespace: the seam between the persistence stack and
/// the disk. All paths are interpreted by the implementation —
/// [`FaultVfs`] never touches the real filesystem.
pub trait Vfs: Send + Sync {
    /// Reads a whole file.
    fn read(&self, path: &Path) -> Result<Vec<u8>, StoreError>;
    /// Creates (or truncates) a file for writing.
    fn create(&self, path: &Path) -> Result<Box<dyn VfsFile>, StoreError>;
    /// Opens an existing file for appending (position at end).
    fn open_append(&self, path: &Path) -> Result<Box<dyn VfsFile>, StoreError>;
    /// Whether a file exists.
    fn exists(&self, path: &Path) -> bool;
    /// Atomically renames `from` over `to`. Durable only after
    /// [`Vfs::sync_parent_dir`].
    fn rename(&self, from: &Path, to: &Path) -> Result<(), StoreError>;
    /// Removes a file. Durable only after [`Vfs::sync_parent_dir`].
    fn remove(&self, path: &Path) -> Result<(), StoreError>;
    /// Fsyncs the directory containing `path`, making pending renames,
    /// removals, and creations of entries in it durable.
    fn sync_parent_dir(&self, path: &Path) -> Result<(), StoreError>;
}

/// A shared production vfs handle.
pub fn std_vfs() -> Arc<dyn Vfs> {
    Arc::new(StdVfs)
}

// ---- production ---------------------------------------------------------

/// The production vfs: `std::fs`, plus a real parent-directory fsync.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdVfs;

struct StdVfsFile {
    file: std::fs::File,
}

impl VfsFile for StdVfsFile {
    fn write_all(&mut self, buf: &[u8]) -> Result<(), StoreError> {
        Ok(self.file.write_all(buf)?)
    }

    fn set_len(&mut self, len: u64) -> Result<(), StoreError> {
        self.file.set_len(len)?;
        use std::io::Seek;
        self.file.seek(std::io::SeekFrom::End(0))?;
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        Ok(self.file.sync_all()?)
    }
}

impl Vfs for StdVfs {
    fn read(&self, path: &Path) -> Result<Vec<u8>, StoreError> {
        Ok(std::fs::read(path)?)
    }

    fn create(&self, path: &Path) -> Result<Box<dyn VfsFile>, StoreError> {
        let file =
            std::fs::OpenOptions::new().write(true).create(true).truncate(true).open(path)?;
        Ok(Box::new(StdVfsFile { file }))
    }

    fn open_append(&self, path: &Path) -> Result<Box<dyn VfsFile>, StoreError> {
        let mut file = std::fs::OpenOptions::new().read(true).write(true).open(path)?;
        use std::io::Seek;
        file.seek(std::io::SeekFrom::End(0))?;
        Ok(Box::new(StdVfsFile { file }))
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), StoreError> {
        Ok(std::fs::rename(from, to)?)
    }

    fn remove(&self, path: &Path) -> Result<(), StoreError> {
        Ok(std::fs::remove_file(path)?)
    }

    fn sync_parent_dir(&self, path: &Path) -> Result<(), StoreError> {
        let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) else {
            return Ok(());
        };
        #[cfg(unix)]
        {
            std::fs::File::open(dir)?.sync_all()?;
        }
        #[cfg(not(unix))]
        {
            // Directories cannot be opened/fsynced portably elsewhere;
            // the rename itself is the best available barrier.
            let _ = dir;
        }
        Ok(())
    }
}

// ---- fault injection ----------------------------------------------------

/// A seeded fault schedule for a [`FaultVfs`]. `*_every` fields arm a
/// fault class: `0` disables it, `n` makes roughly every n-th candidate
/// operation fail, chosen by a seeded hash of the global operation
/// counter — deterministic for a given `(seed, plan)` but spread
/// pseudo-randomly through the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for every pseudo-random decision (fault placement and torn
    /// crash tails).
    pub seed: u64,
    /// Roughly every n-th write appends only a seeded prefix and fails
    /// with `ErrorKind::WriteZero` (0 = off).
    pub short_write_every: u64,
    /// Roughly every n-th fsync fails with `ErrorKind::Other`, leaving
    /// the durable bytes unchanged (0 = off).
    pub fail_fsync_every: u64,
    /// Roughly every n-th rename fails with `ErrorKind::Other`, leaving
    /// the live namespace unchanged (0 = off).
    pub fail_rename_every: u64,
    /// Total write budget in bytes; once exhausted every write fails
    /// with `ErrorKind::StorageFull` (`None` = unlimited).
    pub disk_capacity: Option<u64>,
    /// Crash at the operation with this zero-based index: it and every
    /// later operation fail with `ErrorKind::BrokenPipe`, and the
    /// durable image freezes as of the operations before it.
    pub crash_at_op: Option<u64>,
}

impl FaultPlan {
    /// A plan with every fault disabled (a plain in-memory disk).
    pub fn none(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            short_write_every: 0,
            fail_fsync_every: 0,
            fail_rename_every: 0,
            disk_capacity: None,
            crash_at_op: None,
        }
    }
}

/// Injected-fault hit counts, by class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultHits {
    /// Writes that appended only a prefix.
    pub short_writes: u64,
    /// Fsyncs that failed without flushing.
    pub failed_fsyncs: u64,
    /// Renames that failed in place.
    pub failed_renames: u64,
    /// Writes refused for an exhausted byte budget.
    pub enospc: u64,
    /// Operations refused because the disk crashed.
    pub crashes: u64,
}

impl FaultHits {
    /// Total injected faults across every class.
    pub fn total(&self) -> u64 {
        self.short_writes + self.failed_fsyncs + self.failed_renames + self.enospc + self.crashes
    }
}

/// Obs counter handles for injected faults (`taco_vfs_faults_total`).
struct VfsObs {
    short_writes: taco_obs::Counter,
    failed_fsyncs: taco_obs::Counter,
    failed_renames: taco_obs::Counter,
    enospc: taco_obs::Counter,
    crashes: taco_obs::Counter,
}

#[derive(Debug, Clone)]
enum NsOp {
    Rename { from: PathBuf, to: PathBuf },
    Remove { path: PathBuf },
}

struct Inner {
    /// The live namespace and content: what the running process sees.
    live: HashMap<PathBuf, Vec<u8>>,
    /// The durable image: entries and their last-synced content. A file
    /// `sync` commits content (and, for a new file, the entry); `rename`
    /// and `remove` only reach this map via `sync_parent_dir`.
    durable: HashMap<PathBuf, Vec<u8>>,
    /// Namespace ops applied live but not yet made durable by a
    /// parent-directory fsync.
    pending: Vec<NsOp>,
    plan: FaultPlan,
    ops: u64,
    written: u64,
    crashed: bool,
    hits: FaultHits,
    log: Vec<String>,
    obs: Option<VfsObs>,
}

/// The operation classes the fault scheduler distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Read,
    Create,
    Write,
    SetLen,
    Sync,
    Rename,
    Remove,
    SyncDir,
}

/// splitmix64: the repo's standard cheap deterministic mixer.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Inner {
    /// Counts the operation, fires a pending crash point, and returns
    /// the op's decision hash for fault placement.
    fn begin_op(&mut self, kind: OpKind, path: &Path) -> Result<u64, StoreError> {
        if self.crashed {
            self.hits.crashes += 1;
            return Err(StoreError::Io { kind: std::io::ErrorKind::BrokenPipe });
        }
        let op = self.ops;
        self.ops += 1;
        if self.plan.crash_at_op == Some(op) {
            self.crashed = true;
            self.hits.crashes += 1;
            self.note(op, "crash", kind, path);
            if let Some(o) = &self.obs {
                o.crashes.inc();
            }
            return Err(StoreError::Io { kind: std::io::ErrorKind::BrokenPipe });
        }
        Ok(mix(self.plan.seed ^ mix(op)))
    }

    fn note(&mut self, op: u64, fault: &str, kind: OpKind, path: &Path) {
        if self.log.len() < 10_000 {
            self.log.push(format!("op {op}: {fault} during {kind:?} of {}", path.display()));
        }
    }

    fn fires(h: u64, every: u64, salt: u64) -> bool {
        every > 0 && mix(h ^ salt).is_multiple_of(every)
    }

    /// The crash-surviving bytes for every durable entry: last-synced
    /// content plus a seeded prefix of any unsynced appended tail.
    fn crash_image(&self) -> HashMap<PathBuf, Vec<u8>> {
        let mut out = HashMap::new();
        for (path, durable) in &self.durable {
            let mut bytes = durable.clone();
            // An unsynced append may partially land: keep a seeded
            // prefix of the tail. Unsynced truncates/rewrites are lost.
            if let Some(live) = self.live.get(path) {
                if live.len() > durable.len() && live[..durable.len()] == durable[..] {
                    let extra = live.len() - durable.len();
                    let keep = (mix(self.plan.seed ^ 0xD15C ^ mix(path_hash(path)))
                        % (extra as u64 + 1)) as usize;
                    bytes.extend_from_slice(&live[durable.len()..durable.len() + keep]);
                }
            }
            out.insert(path.clone(), bytes);
        }
        out
    }
}

fn path_hash(p: &Path) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in p.as_os_str().as_encoded_bytes() {
        h = (h ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A deterministic in-memory fault-injecting disk. Clones share the
/// same simulated disk.
#[derive(Clone)]
pub struct FaultVfs {
    inner: Arc<Mutex<Inner>>,
}

impl FaultVfs {
    /// An empty simulated disk running `plan`.
    pub fn new(plan: FaultPlan) -> FaultVfs {
        FaultVfs {
            inner: Arc::new(Mutex::new(Inner {
                live: HashMap::new(),
                durable: HashMap::new(),
                pending: Vec::new(),
                plan,
                ops: 0,
                written: 0,
                crashed: false,
                hits: FaultHits::default(),
                log: Vec::new(),
                obs: None,
            })),
        }
    }

    /// An empty fault-free in-memory disk.
    pub fn pristine(seed: u64) -> FaultVfs {
        FaultVfs::new(FaultPlan::none(seed))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Re-arms the schedule mid-run (e.g. arm a crash point after a
    /// clean build phase). The op counter keeps running.
    pub fn set_plan(&self, plan: FaultPlan) {
        self.lock().plan = plan;
    }

    /// Arms a crash at the operation with zero-based index `op` (ops
    /// before it proceed normally).
    pub fn set_crash_at(&self, op: u64) {
        self.lock().plan.crash_at_op = Some(op);
    }

    /// Total operations performed so far — the sweep bound for
    /// crash-point enumeration.
    pub fn op_count(&self) -> u64 {
        self.lock().ops
    }

    /// Whether a crash point has fired.
    pub fn crashed(&self) -> bool {
        self.lock().crashed
    }

    /// Injected-fault hit counts so far.
    pub fn hits(&self) -> FaultHits {
        self.lock().hits
    }

    /// Human-readable log of every injected fault, in order.
    pub fn fault_log(&self) -> Vec<String> {
        self.lock().log.clone()
    }

    /// The durable (crash-surviving) bytes of `path` right now, if its
    /// directory entry is durable.
    pub fn durable_bytes(&self, path: &Path) -> Option<Vec<u8>> {
        self.lock().crash_image().remove(path)
    }

    /// A fresh fault-free disk holding exactly what this disk's durable
    /// image holds — what a reopen after power loss would find. Works
    /// whether or not a crash point has fired.
    pub fn reopen_from_crash(&self) -> FaultVfs {
        let (image, seed) = {
            let inner = self.lock();
            (inner.crash_image(), inner.plan.seed)
        };
        let fresh = FaultVfs::pristine(mix(seed));
        {
            let mut inner = fresh.lock();
            for (path, bytes) in image {
                inner.live.insert(path.clone(), bytes.clone());
                inner.durable.insert(path, bytes);
            }
        }
        fresh
    }

    /// Registers `taco_vfs_faults_total{kind="…"}` counters; every
    /// subsequently injected fault bumps its class counter.
    pub fn attach_obs(&self, obs: &taco_obs::Obs) {
        let m = &obs.metrics;
        self.lock().obs = Some(VfsObs {
            short_writes: m.counter_with("taco_vfs_faults_total", "kind=\"short_write\""),
            failed_fsyncs: m.counter_with("taco_vfs_faults_total", "kind=\"fsync\""),
            failed_renames: m.counter_with("taco_vfs_faults_total", "kind=\"rename\""),
            enospc: m.counter_with("taco_vfs_faults_total", "kind=\"enospc\""),
            crashes: m.counter_with("taco_vfs_faults_total", "kind=\"crash\""),
        });
    }
}

struct FaultVfsFile {
    inner: Arc<Mutex<Inner>>,
    path: PathBuf,
}

impl FaultVfsFile {
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl VfsFile for FaultVfsFile {
    fn write_all(&mut self, buf: &[u8]) -> Result<(), StoreError> {
        let mut g = self.lock();
        let h = g.begin_op(OpKind::Write, &self.path)?;
        if let Some(cap) = g.plan.disk_capacity {
            if g.written.saturating_add(buf.len() as u64) > cap {
                g.hits.enospc += 1;
                let op = g.ops - 1;
                g.note(op, "enospc", OpKind::Write, &self.path);
                if let Some(o) = &g.obs {
                    o.enospc.inc();
                }
                return Err(StoreError::Io { kind: std::io::ErrorKind::StorageFull });
            }
        }
        let short = Inner::fires(h, g.plan.short_write_every, 0x5707) && !buf.is_empty();
        let take = if short { (mix(h) % buf.len() as u64) as usize } else { buf.len() };
        g.written += take as u64;
        let file = g.live.entry(self.path.clone()).or_default();
        file.extend_from_slice(&buf[..take]);
        if short {
            g.hits.short_writes += 1;
            let op = g.ops - 1;
            g.note(op, "short write", OpKind::Write, &self.path);
            if let Some(o) = &g.obs {
                o.short_writes.inc();
            }
            return Err(StoreError::Io { kind: std::io::ErrorKind::WriteZero });
        }
        Ok(())
    }

    fn set_len(&mut self, len: u64) -> Result<(), StoreError> {
        let mut g = self.lock();
        g.begin_op(OpKind::SetLen, &self.path)?;
        let file = g.live.entry(self.path.clone()).or_default();
        file.resize(len as usize, 0);
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        let mut g = self.lock();
        let h = g.begin_op(OpKind::Sync, &self.path)?;
        if Inner::fires(h, g.plan.fail_fsync_every, 0xF5BC) {
            g.hits.failed_fsyncs += 1;
            let op = g.ops - 1;
            g.note(op, "failed fsync", OpKind::Sync, &self.path);
            if let Some(o) = &g.obs {
                o.failed_fsyncs.inc();
            }
            return Err(StoreError::Io { kind: std::io::ErrorKind::Other });
        }
        if let Some(live) = g.live.get(&self.path) {
            let bytes = live.clone();
            g.durable.insert(self.path.clone(), bytes);
        }
        Ok(())
    }
}

impl Vfs for FaultVfs {
    fn read(&self, path: &Path) -> Result<Vec<u8>, StoreError> {
        let mut g = self.lock();
        g.begin_op(OpKind::Read, path)?;
        g.live.get(path).cloned().ok_or(StoreError::Io { kind: std::io::ErrorKind::NotFound })
    }

    fn create(&self, path: &Path) -> Result<Box<dyn VfsFile>, StoreError> {
        let mut g = self.lock();
        g.begin_op(OpKind::Create, path)?;
        // A truncating create only touches the live view: the durable
        // image keeps the old content until the next successful file
        // sync — a crash right after the create still finds the old
        // bytes, exactly like an unsynced truncate.
        g.live.insert(path.to_path_buf(), Vec::new());
        drop(g);
        Ok(Box::new(FaultVfsFile { inner: Arc::clone(&self.inner), path: path.to_path_buf() }))
    }

    fn open_append(&self, path: &Path) -> Result<Box<dyn VfsFile>, StoreError> {
        let mut g = self.lock();
        g.begin_op(OpKind::Read, path)?;
        if !g.live.contains_key(path) {
            return Err(StoreError::Io { kind: std::io::ErrorKind::NotFound });
        }
        drop(g);
        Ok(Box::new(FaultVfsFile { inner: Arc::clone(&self.inner), path: path.to_path_buf() }))
    }

    fn exists(&self, path: &Path) -> bool {
        self.lock().live.contains_key(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), StoreError> {
        let mut g = self.lock();
        let h = g.begin_op(OpKind::Rename, from)?;
        if Inner::fires(h, g.plan.fail_rename_every, 0x4EAE) {
            g.hits.failed_renames += 1;
            let op = g.ops - 1;
            g.note(op, "failed rename", OpKind::Rename, from);
            if let Some(o) = &g.obs {
                o.failed_renames.inc();
            }
            return Err(StoreError::Io { kind: std::io::ErrorKind::Other });
        }
        let Some(bytes) = g.live.remove(from) else {
            return Err(StoreError::Io { kind: std::io::ErrorKind::NotFound });
        };
        // Live view: the rename happens now. Durable view: only at the
        // next `sync_parent_dir` — until then a crash still shows the
        // old entries under the old names.
        g.live.insert(to.to_path_buf(), bytes);
        g.pending.push(NsOp::Rename { from: from.to_path_buf(), to: to.to_path_buf() });
        Ok(())
    }

    fn remove(&self, path: &Path) -> Result<(), StoreError> {
        let mut g = self.lock();
        g.begin_op(OpKind::Remove, path)?;
        if g.live.remove(path).is_none() {
            return Err(StoreError::Io { kind: std::io::ErrorKind::NotFound });
        }
        g.pending.push(NsOp::Remove { path: path.to_path_buf() });
        Ok(())
    }

    fn sync_parent_dir(&self, path: &Path) -> Result<(), StoreError> {
        let mut g = self.lock();
        g.begin_op(OpKind::SyncDir, path)?;
        let dir = path.parent().map(Path::to_path_buf);
        let pending = std::mem::take(&mut g.pending);
        let mut kept = Vec::new();
        for op in pending {
            let in_dir = |p: &Path| p.parent().map(Path::to_path_buf) == dir;
            match op {
                NsOp::Rename { from, to } if in_dir(&from) || in_dir(&to) => {
                    // The renamed inode's durable *content* is whatever
                    // its last file sync committed (under the old name).
                    if let Some(bytes) = g.durable.remove(&from) {
                        g.durable.insert(to, bytes);
                    } else {
                        g.durable.remove(&to);
                    }
                }
                NsOp::Remove { path } if in_dir(&path) => {
                    g.durable.remove(&path);
                }
                other => kept.push(other),
            }
        }
        g.pending = kept;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    fn write_sync(vfs: &FaultVfs, path: &Path, bytes: &[u8]) {
        let mut f = vfs.create(path).unwrap();
        f.write_all(bytes).unwrap();
        f.sync().unwrap();
    }

    #[test]
    fn synced_bytes_survive_a_crash_unsynced_tails_may_tear() {
        let vfs = FaultVfs::pristine(7);
        let mut f = vfs.create(&p("a")).unwrap();
        f.write_all(b"durable").unwrap();
        f.sync().unwrap();
        f.write_all(b"-unsynced-tail").unwrap();
        drop(f);
        let back = vfs.reopen_from_crash();
        let bytes = back.read(&p("a")).unwrap();
        assert!(bytes.starts_with(b"durable"));
        assert!(bytes.len() <= b"durable-unsynced-tail".len());
        assert_eq!(&bytes[..], &b"durable-unsynced-tail"[..bytes.len()]);
    }

    #[test]
    fn rename_is_lost_without_a_directory_sync() {
        let vfs = FaultVfs::pristine(3);
        write_sync(&vfs, &p("snap"), b"old");
        vfs.sync_parent_dir(&p("snap")).unwrap();
        write_sync(&vfs, &p("snap.tmp"), b"new-longer");
        vfs.rename(&p("snap.tmp"), &p("snap")).unwrap();
        // Live view sees the rename immediately.
        assert_eq!(vfs.read(&p("snap")).unwrap(), b"new-longer");
        assert!(!vfs.exists(&p("snap.tmp")));
        // ...but a crash before the dir sync reveals the old entry.
        let crashed = vfs.reopen_from_crash();
        assert_eq!(crashed.read(&p("snap")).unwrap(), b"old");
        assert_eq!(crashed.read(&p("snap.tmp")).unwrap(), b"new-longer");
        // After the dir sync the rename is durable.
        vfs.sync_parent_dir(&p("snap")).unwrap();
        let synced = vfs.reopen_from_crash();
        assert_eq!(synced.read(&p("snap")).unwrap(), b"new-longer");
        assert!(!synced.exists(&p("snap.tmp")));
    }

    #[test]
    fn failed_fsync_leaves_durable_bytes_unchanged() {
        let plan = FaultPlan { fail_fsync_every: 1, ..FaultPlan::none(11) };
        let vfs = FaultVfs::new(plan);
        let mut f = vfs.create(&p("w")).unwrap();
        f.write_all(b"data").unwrap();
        assert!(matches!(f.sync(), Err(StoreError::Io { .. })));
        assert_eq!(vfs.hits().failed_fsyncs, 1);
        // Nothing was ever durably synced: the entry does not survive.
        assert!(vfs.reopen_from_crash().read(&p("w")).is_err());
    }

    #[test]
    fn crash_point_freezes_the_disk_and_poisons_later_ops() {
        let vfs = FaultVfs::pristine(5);
        write_sync(&vfs, &p("x"), b"one");
        vfs.sync_parent_dir(&p("x")).unwrap();
        let before = vfs.op_count();
        vfs.set_crash_at(before);
        assert!(matches!(vfs.read(&p("x")), Err(StoreError::Io { .. })));
        assert!(vfs.crashed());
        assert!(vfs.create(&p("y")).is_err());
        assert_eq!(vfs.reopen_from_crash().read(&p("x")).unwrap(), b"one");
    }

    #[test]
    fn enospc_fires_after_the_byte_budget() {
        let plan = FaultPlan { disk_capacity: Some(6), ..FaultPlan::none(1) };
        let vfs = FaultVfs::new(plan);
        let mut f = vfs.create(&p("z")).unwrap();
        f.write_all(b"1234").unwrap();
        let err = f.write_all(b"567").unwrap_err();
        assert_eq!(err, StoreError::Io { kind: std::io::ErrorKind::StorageFull });
        assert_eq!(vfs.hits().enospc, 1);
        assert!(!vfs.fault_log().is_empty());
    }

    #[test]
    fn short_writes_keep_a_prefix_and_are_typed() {
        let plan = FaultPlan { short_write_every: 1, ..FaultPlan::none(42) };
        let vfs = FaultVfs::new(plan);
        let mut f = vfs.create(&p("s")).unwrap();
        let err = f.write_all(b"abcdefgh").unwrap_err();
        assert_eq!(err, StoreError::Io { kind: std::io::ErrorKind::WriteZero });
        assert_eq!(vfs.hits().short_writes, 1);
        vfs.set_plan(FaultPlan::none(42));
        let live = {
            let mut f2 = vfs.open_append(&p("s")).unwrap();
            f2.sync().unwrap();
            vfs.read(&p("s")).unwrap()
        };
        assert!(live.len() < 8);
        assert_eq!(&live[..], &b"abcdefgh"[..live.len()]);
    }

    #[test]
    fn unsynced_truncate_is_lost_on_crash() {
        let vfs = FaultVfs::pristine(9);
        write_sync(&vfs, &p("t"), b"full-content");
        vfs.sync_parent_dir(&p("t")).unwrap();
        let mut f = vfs.open_append(&p("t")).unwrap();
        f.set_len(4).unwrap();
        drop(f);
        assert_eq!(vfs.read(&p("t")).unwrap(), b"full");
        // The truncate never synced: the crash image has the old bytes.
        assert_eq!(vfs.reopen_from_crash().read(&p("t")).unwrap(), b"full-content");
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let run = |seed| {
            let plan = FaultPlan { short_write_every: 3, ..FaultPlan::none(seed) };
            let vfs = FaultVfs::new(plan);
            let mut out = Vec::new();
            for i in 0..20u8 {
                let path = p(&format!("f{}", i % 4));
                let mut f = vfs.create(&path).unwrap();
                let r = f.write_all(&[i; 16]);
                let _ = f.sync();
                out.push(r.is_ok());
            }
            (out, vfs.hits())
        };
        assert_eq!(run(77), run(77));
        assert_ne!(run(77).0, run(78).0);
    }
}
