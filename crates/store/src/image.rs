//! The plain-data model the container serializes: a [`WorkbookImage`] is
//! everything a workbook must persist, decoupled from live engine types so
//! `taco_store` sits below `taco_engine` in the crate DAG.
//!
//! Derived state is deliberately absent: the R-tree spatial indexes are
//! rebuilt on open (`FormulaGraph::restore`), and formula ASTs are
//! re-parsed from their interned source text — parsing is deterministic
//! and orders of magnitude cheaper than recompression.

use crate::codec::{read_f64, read_string, read_uvarint, write_f64, write_string, write_uvarint};
use crate::StoreError;
use std::io::{Read, Write};
use taco_core::GraphSnapshot;
use taco_formula::{CellError, Value};
use taco_grid::{Cell, Range};

/// What one cell persists: a pure value, or a formula's source text plus
/// its last evaluated value.
#[derive(Debug, Clone, PartialEq)]
pub enum CellRecord {
    /// A pure (typed constant) value.
    Pure(Value),
    /// A formula cell: source text (no leading `=`) and cached value.
    Formula {
        /// The formula source, re-parsed on open.
        src: String,
        /// The most recent evaluated value.
        value: Value,
    },
}

/// One sheet's persistent state.
#[derive(Debug, Clone, PartialEq)]
pub struct SheetImage {
    /// The sheet name (unique per workbook, case-insensitively).
    pub name: String,
    /// Non-empty cells, sorted by `(col, row)`.
    pub cells: Vec<(Cell, CellRecord)>,
    /// Formula cells awaiting recalculation, sorted. Persisted so a
    /// snapshot taken mid-edit reopens into the same observable state.
    pub dirty: Vec<Cell>,
    /// The compressed formula graph, exactly as built (no recompression
    /// on open).
    pub graph: GraphSnapshot,
}

/// One inter-sheet dependency in image form: the formula at
/// `sheets[dst]!dep` references `sheets[src]!prec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrossEdgeImage {
    /// Index of the sheet holding the referenced range.
    pub src: u32,
    /// The referenced range on the source sheet.
    pub prec: Range,
    /// Index of the sheet holding the formula.
    pub dst: u32,
    /// The formula cell on the destination sheet.
    pub dep: Cell,
}

/// A whole workbook's persistent state. Sheet order is identity: index
/// `i` here is `SheetId(i)` in the live workbook.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkbookImage {
    /// Per-sheet images, in sheet-id order.
    pub sheets: Vec<SheetImage>,
    /// The inter-sheet edge table.
    pub cross: Vec<CrossEdgeImage>,
    /// The replay epoch this snapshot was written at (see
    /// [`crate::wal`]); `0` for images that never belonged to a
    /// WAL-backed workbook and for version-1 files.
    pub epoch: u64,
}

// ---- value encoding (shared by cell sections and WAL records) ----------

const TAG_EMPTY: u8 = 0;
const TAG_NUMBER: u8 = 1;
const TAG_TEXT: u8 = 2;
const TAG_BOOL: u8 = 3;
const TAG_ERROR: u8 = 4;

fn error_code(e: CellError) -> u8 {
    match e {
        CellError::Div0 => 0,
        CellError::Value => 1,
        CellError::Ref => 2,
        CellError::Name => 3,
        CellError::Na => 4,
        CellError::Cycle => 5,
    }
}

fn error_from_code(c: u8) -> Result<CellError, StoreError> {
    Ok(match c {
        0 => CellError::Div0,
        1 => CellError::Value,
        2 => CellError::Ref,
        3 => CellError::Name,
        4 => CellError::Na,
        5 => CellError::Cycle,
        _ => return Err(StoreError::Malformed("unknown cell-error code")),
    })
}

/// The value's type tag (low nibble of a cell's tag byte).
pub(crate) fn value_tag(v: &Value) -> u8 {
    match v {
        Value::Empty => TAG_EMPTY,
        Value::Number(_) => TAG_NUMBER,
        Value::Text(_) => TAG_TEXT,
        Value::Bool(_) => TAG_BOOL,
        Value::Error(_) => TAG_ERROR,
    }
}

/// Writes a value's payload (everything but the tag).
pub(crate) fn write_value_payload<W: Write>(w: &mut W, v: &Value) -> Result<(), StoreError> {
    match v {
        Value::Empty => Ok(()),
        Value::Number(n) => write_f64(w, *n),
        Value::Text(s) => write_string(w, s),
        Value::Bool(b) => {
            w.write_all(&[u8::from(*b)])?;
            Ok(())
        }
        Value::Error(e) => {
            w.write_all(&[error_code(*e)])?;
            Ok(())
        }
    }
}

/// Reads the payload for a value of type `tag`.
pub(crate) fn read_value_payload<R: Read>(r: &mut R, tag: u8) -> Result<Value, StoreError> {
    Ok(match tag {
        TAG_EMPTY => Value::Empty,
        TAG_NUMBER => Value::Number(read_f64(r)?),
        TAG_TEXT => Value::Text(read_string(r, crate::container::MAX_STRING)?),
        TAG_BOOL => {
            let mut b = [0u8; 1];
            r.read_exact(&mut b)?;
            match b[0] {
                0 => Value::Bool(false),
                1 => Value::Bool(true),
                _ => return Err(StoreError::Malformed("bool byte out of range")),
            }
        }
        TAG_ERROR => {
            let mut b = [0u8; 1];
            r.read_exact(&mut b)?;
            Value::Error(error_from_code(b[0])?)
        }
        _ => return Err(StoreError::Malformed("unknown value tag")),
    })
}

/// Writes a standalone tagged value (WAL records).
pub fn write_value<W: Write>(w: &mut W, v: &Value) -> Result<(), StoreError> {
    w.write_all(&[value_tag(v)])?;
    write_value_payload(w, v)
}

/// Reads a standalone tagged value (WAL records).
pub fn read_value<R: Read>(r: &mut R) -> Result<Value, StoreError> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    read_value_payload(r, tag[0])
}

/// Writes a cell as two varints (1-based coordinates).
pub fn write_cell<W: Write>(w: &mut W, c: Cell) -> Result<(), StoreError> {
    write_uvarint(w, u64::from(c.col))?;
    write_uvarint(w, u64::from(c.row))
}

/// Reads a cell written by [`write_cell`], validating bounds.
pub fn read_cell<R: Read>(r: &mut R) -> Result<Cell, StoreError> {
    let col = small_i64(read_uvarint(r)?)?;
    let row = small_i64(read_uvarint(r)?)?;
    cell_from(col, row)
}

/// Bounds-checked cell construction for decoders (never panics).
pub(crate) fn cell_from(col: i64, row: i64) -> Result<Cell, StoreError> {
    Cell::try_new(col, row).map_err(|_| StoreError::Malformed("cell coordinate out of range"))
}

/// Narrows a decoded magnitude to the coordinate domain (≤ `u32::MAX`)
/// so subsequent `i64` additions cannot overflow. Decoders must route
/// every untrusted delta/size through this or [`checked_coord`]: a
/// crafted (re-checksummed) file reaches this arithmetic with arbitrary
/// varints, and the never-panic contract has to hold there too.
pub(crate) fn small_i64(v: u64) -> Result<i64, StoreError> {
    if v > u64::from(u32::MAX) {
        return Err(StoreError::Malformed("coordinate magnitude out of range"));
    }
    Ok(v as i64)
}

/// Overflow-checked coordinate addition for decoders (never panics).
pub(crate) fn checked_coord(base: i64, delta: i64) -> Result<i64, StoreError> {
    base.checked_add(delta).ok_or(StoreError::Malformed("coordinate arithmetic overflow"))
}

/// Writes a range as head + size (4 varints).
pub fn write_range<W: Write>(w: &mut W, r: Range) -> Result<(), StoreError> {
    write_cell(w, r.head())?;
    write_uvarint(w, u64::from(r.width() - 1))?;
    write_uvarint(w, u64::from(r.height() - 1))
}

/// Reads a range written by [`write_range`].
pub fn read_range<R: Read>(r: &mut R) -> Result<Range, StoreError> {
    let head = read_cell(r)?;
    let w = small_i64(read_uvarint(r)?)?;
    let h = small_i64(read_uvarint(r)?)?;
    let tail = cell_from(i64::from(head.col) + w, i64::from(head.row) + h)?;
    Ok(Range::new(head, tail))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip() {
        let vals = [
            Value::Empty,
            Value::Number(13.25),
            Value::Number(f64::NAN),
            Value::Text("héllo ≠ wörld".to_string()),
            Value::Bool(true),
            Value::Bool(false),
            Value::Error(CellError::Cycle),
            Value::Error(CellError::Div0),
        ];
        let mut buf = Vec::new();
        for v in &vals {
            write_value(&mut buf, v).unwrap();
        }
        let mut r = buf.as_slice();
        for v in &vals {
            let got = read_value(&mut r).unwrap();
            match (v, &got) {
                (Value::Number(a), Value::Number(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                _ => assert_eq!(&got, v),
            }
        }
    }

    #[test]
    fn ranges_round_trip() {
        for s in ["A1", "A1:B3", "ZZ100:AAB9000"] {
            let range = Range::parse_a1(s).unwrap();
            let mut buf = Vec::new();
            write_range(&mut buf, range).unwrap();
            assert_eq!(read_range(&mut buf.as_slice()).unwrap(), range);
        }
    }

    #[test]
    fn bad_tags_are_typed_errors() {
        assert!(matches!(
            read_value(&mut [9u8].as_slice()),
            Err(StoreError::Malformed("unknown value tag"))
        ));
        assert!(matches!(
            read_value(&mut [TAG_ERROR, 77].as_slice()),
            Err(StoreError::Malformed("unknown cell-error code"))
        ));
        assert!(matches!(
            read_value(&mut [TAG_BOOL, 2].as_slice()),
            Err(StoreError::Malformed("bool byte out of range"))
        ));
        // Cell coordinate 0 is invalid (1-based grid).
        assert!(read_cell(&mut [0u8, 1].as_slice()).is_err());
    }
}
