//! Corruption robustness: damaged containers and WALs must always come
//! back as typed [`StoreError`]s — never a panic, never silently wrong
//! data.
//!
//! The container properties are exhaustive where cheap (every truncation
//! length, one flipped bit in every byte) and randomized on top; the WAL
//! properties run over random cut points per the crash model: a crash
//! can truncate the log anywhere, and replay must recover exactly the
//! clean prefix.

use proptest::prelude::*;
use taco_core::{Config, Dependency, FormulaGraph};
use taco_formula::{CellError, Value};
use taco_grid::{Cell, Range};
use taco_store::{
    CellRecord, CrossEdgeImage, EditRecord, ReplayMode, SheetImage, StoreError, StoreReader,
    WalReader, WorkbookImage,
};

/// A reasonably rich image: three sheets, every pattern kind in the
/// graphs, every value type in the cells, dirty sets, cross edges.
fn rich_image() -> WorkbookImage {
    let mut deps: Vec<Dependency> = Vec::new();
    // RR windows, FR cumulative, FF lookups, a chain, singles.
    for row in 1..=40u32 {
        deps.push(Dependency::new(Range::from_coords(1, row, 1, row + 2), Cell::new(2, row)));
        deps.push(Dependency::new(Range::from_coords(1, 1, 1, row), Cell::new(3, row)));
        deps.push(Dependency::new(Range::from_coords(1, 1, 1, 8), Cell::new(5, row)));
        if row > 1 {
            deps.push(Dependency::new(Range::cell(Cell::new(4, row - 1)), Cell::new(4, row)));
        }
    }
    deps.push(Dependency::new(Range::from_coords(90, 1, 95, 30), Cell::new(100, 7)));
    let graph = FormulaGraph::build(Config::taco_full(), deps.iter().copied()).snapshot();

    // Pre-sorted by (col, row): the container canonicalizes cell order,
    // so a sorted fixture round-trips to an identical image.
    let mut cells: Vec<(Cell, CellRecord)> = Vec::new();
    for row in 1..=40u32 {
        cells.push((Cell::new(1, row), CellRecord::Pure(Value::Number(f64::from(row) * 1.5))));
    }
    for row in 1..=40u32 {
        cells.push((
            Cell::new(2, row),
            CellRecord::Formula {
                src: format!("SUM(A{row}:A{})", row + 2),
                value: Value::Number(4.5),
            },
        ));
    }
    cells.push((Cell::new(9, 1), CellRecord::Pure(Value::Text("päyload".into()))));
    cells.push((Cell::new(9, 2), CellRecord::Pure(Value::Bool(true))));
    cells.push((Cell::new(9, 3), CellRecord::Pure(Value::Error(CellError::Div0))));
    cells.push((Cell::new(9, 4), CellRecord::Pure(Value::Empty)));

    let sheet = |name: &str| SheetImage {
        name: name.to_string(),
        cells: cells.clone(),
        dirty: vec![Cell::new(2, 3), Cell::new(2, 9)],
        graph: graph.clone(),
    };
    WorkbookImage {
        sheets: vec![sheet("Alpha"), sheet("Beta Sheet"), sheet("Gamma")],
        cross: vec![
            CrossEdgeImage {
                src: 0,
                prec: Range::from_coords(2, 1, 2, 40),
                dst: 1,
                dep: Cell::new(7, 1),
            },
            CrossEdgeImage {
                src: 1,
                prec: Range::cell(Cell::new(7, 1)),
                dst: 2,
                dep: Cell::new(7, 2),
            },
        ],
        epoch: 3,
    }
}

fn wal_bytes() -> (Vec<u8>, Vec<EditRecord>) {
    let path =
        std::env::temp_dir().join(format!("taco_corruption_wal_{}.twal", std::process::id()));
    let records: Vec<EditRecord> = (0..30u32)
        .flat_map(|i| {
            vec![
                EditRecord::SetValue {
                    sheet: i % 3,
                    cell: Cell::new(1, i + 1),
                    value: Value::Number(f64::from(i) / 3.0),
                },
                EditRecord::SetFormula {
                    sheet: i % 3,
                    cell: Cell::new(2, i + 1),
                    src: format!("A{}*2", i + 1),
                },
                EditRecord::ClearRange {
                    sheet: i % 3,
                    range: Range::from_coords(3, i + 1, 4, i + 2),
                },
            ]
        })
        .collect();
    let mut w = taco_store::WalWriter::create(&path).expect("temp wal");
    for r in &records {
        w.append(r).expect("append");
    }
    w.sync().expect("sync");
    let bytes = std::fs::read(&path).expect("read back");
    std::fs::remove_file(&path).ok();
    (bytes, records)
}

// ---- container ----------------------------------------------------------

#[test]
fn every_truncation_length_is_a_typed_error() {
    let bytes = taco_store::encode_workbook(&rich_image()).expect("encode");
    for cut in 0..bytes.len() {
        match StoreReader::from_bytes(bytes[..cut].to_vec()) {
            Err(_) => {}
            Ok(reader) => {
                // The trailer parsed by luck; decoding the sections must
                // then hit a checksum or bounds error.
                assert!(
                    reader.read_all().is_err(),
                    "truncation to {cut}/{} bytes decoded successfully",
                    bytes.len()
                );
            }
        }
    }
    // And the untruncated file still reads.
    let full = StoreReader::from_bytes(bytes).expect("full file");
    assert_eq!(full.read_all().expect("decode"), rich_image());
}

#[test]
fn every_byte_rejects_a_flipped_bit() {
    let bytes = taco_store::encode_workbook(&rich_image()).expect("encode");
    for (i, _) in bytes.iter().enumerate() {
        let mut damaged = bytes.clone();
        damaged[i] ^= 1 << (i % 8);
        let outcome = StoreReader::from_bytes(damaged).and_then(|r| r.read_all());
        assert!(outcome.is_err(), "bit flip in byte {i}/{} went undetected", bytes.len());
    }
}

#[test]
fn wrong_magic_and_future_version_are_typed() {
    let bytes = taco_store::encode_workbook(&rich_image()).expect("encode");
    let mut wrong_magic = bytes.clone();
    wrong_magic[0..4].copy_from_slice(b"ELSE");
    assert!(matches!(StoreReader::from_bytes(wrong_magic), Err(StoreError::BadMagic)));

    let mut wrong_tail = bytes.clone();
    let n = wrong_tail.len();
    wrong_tail[n - 4..].copy_from_slice(b"ELSE");
    assert!(matches!(StoreReader::from_bytes(wrong_tail), Err(StoreError::BadMagic)));

    let mut future = bytes.clone();
    future[4..6].copy_from_slice(&99u16.to_le_bytes());
    assert!(matches!(StoreReader::from_bytes(future), Err(StoreError::UnsupportedVersion(99))));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_multi_byte_damage_never_panics(seed in 0u64..u64::MAX) {
        let bytes = taco_store::encode_workbook(&rich_image()).expect("encode");
        let mut damaged = bytes.clone();
        let mut x = seed | 1;
        let mut step = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            x
        };
        for _ in 0..(step() % 8 + 1) {
            let pos = (step() % bytes.len() as u64) as usize;
            damaged[pos] ^= (step() % 255 + 1) as u8;
        }
        // Outcome may be any typed error (or, vanishingly unlikely, a
        // clean read if damage re-randomized to the original); it must
        // never panic.
        let _ = StoreReader::from_bytes(damaged).and_then(|r| r.read_all());
    }

    #[test]
    fn wal_random_cut_points_recover_the_clean_prefix(seed in 0u64..u64::MAX) {
        let (bytes, records) = wal_bytes();
        let mut x = seed | 1;
        for _ in 0..16 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let cut = (x % (bytes.len() as u64 + 1)) as usize;
            let torn = &bytes[..cut];
            // Tolerant replay never fails on pure truncation and yields a
            // prefix of the original records.
            let replay = WalReader::parse(torn, ReplayMode::TolerateTear)
                .expect("truncation is always tolerable");
            prop_assert!(replay.records.len() <= records.len());
            prop_assert_eq!(&replay.records[..], &records[..replay.records.len()]);
            match replay.torn {
                None => prop_assert_eq!(cut, replay.clean_len as usize),
                Some((rec, offset)) => {
                    prop_assert_eq!(rec as usize, replay.records.len());
                    prop_assert!(offset as usize <= cut);
                }
            }
            // Strict replay errors unless the cut landed on a record
            // boundary.
            match WalReader::parse(torn, ReplayMode::Strict) {
                Ok(strict) => {
                    prop_assert_eq!(strict.records.len(), replay.records.len());
                    prop_assert_eq!(replay.torn, None);
                }
                Err(
                    StoreError::WalTorn { .. }
                    | StoreError::Truncated { .. }
                    | StoreError::BadMagic,
                ) => {}
                Err(other) => prop_assert!(false, "unexpected error {other:?}"),
            }
        }
    }
}

#[test]
fn crafted_overflow_payloads_are_typed_errors_not_panics() {
    // CRC protects against accidents, not adversaries: a re-checksummed
    // (or directly decoded) payload reaches the coordinate arithmetic
    // with arbitrary varints, and must still fail typed, never overflow.
    use taco_store::codec::{write_uvarint, BitWriter};

    // ClearRange with a near-u64::MAX width delta.
    let mut payload = vec![2u8]; // OP_CLEAR_RANGE
    write_uvarint(&mut payload, 0).unwrap(); // sheet
    write_uvarint(&mut payload, 1).unwrap(); // head col
    write_uvarint(&mut payload, 1).unwrap(); // head row
    write_uvarint(&mut payload, u64::MAX / 2).unwrap(); // width - 1
    write_uvarint(&mut payload, 0).unwrap(); // height - 1
    assert!(matches!(EditRecord::decode(&payload), Err(StoreError::Malformed(_))));

    // A graph edge whose dependent-head delta is i64::MAX.
    let mut graph = Vec::new();
    write_uvarint(&mut graph, 0).unwrap(); // no patterns
    graph.push(0b110); // flags
    write_uvarint(&mut graph, 0).unwrap(); // deps_inserted
    write_uvarint(&mut graph, 1).unwrap(); // one edge
    let mut w = BitWriter::new(&mut graph);
    w.write_gamma_signed(i64::MAX).unwrap(); // dep head col delta
    w.write_gamma_signed(0).unwrap();
    w.finish().unwrap();
    assert!(matches!(taco_store::decode_graph(&graph), Err(StoreError::Malformed(_))));

    // A tiny section declaring billions of elements must be rejected
    // before any allocation happens (counts are bounded by what the
    // remaining input could possibly hold).
    let mut huge = Vec::new();
    write_uvarint(&mut huge, 0).unwrap(); // no patterns
    huge.push(0b110); // flags
    write_uvarint(&mut huge, 0).unwrap(); // deps_inserted
    write_uvarint(&mut huge, 1 << 40).unwrap(); // absurd edge count
    assert!(matches!(
        taco_store::decode_graph(&huge),
        Err(StoreError::Malformed("edge count exceeds input"))
    ));
}

#[test]
fn wal_bit_flips_error_or_shorten_the_prefix() {
    let (bytes, records) = wal_bytes();
    for (i, _) in bytes.iter().enumerate() {
        let mut damaged = bytes.clone();
        damaged[i] ^= 1 << (i % 8);
        match WalReader::parse(&damaged, ReplayMode::TolerateTear) {
            // Damage may surface as corruption, as a bad header, or (for
            // length-field damage near the tail) as a tear; whatever
            // parses must still be a prefix of the truth.
            Err(_) => {}
            Ok(replay) => {
                assert!(
                    replay.records.len() < records.len(),
                    "flip in byte {i} preserved every record undetected"
                );
                assert_eq!(&replay.records[..], &records[..replay.records.len()]);
            }
        }
    }
}
