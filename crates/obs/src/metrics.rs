//! The metrics registry: sharded counters, gauges, and log₂ histograms.
//!
//! Identity is `(name, labels)`: registering the same pair twice returns
//! a handle to the same underlying metric, so independent layers can
//! share a counter without coordinating. Names follow Prometheus
//! conventions (`taco_wal_fsyncs_total`); `labels` is a pre-rendered
//! `key="value"` list (built once at registration — never on the record
//! path).

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Number of counter shards. A power of two so the thread-slot mapping is
/// a mask; 8 covers the worker counts the engine actually spawns.
const SHARDS: usize = 8;

/// Number of histogram buckets: one per possible `u64` magnitude (bucket
/// `b` holds values with bit length `b`, i.e. `[2^(b−1), 2^b)`; bucket 0
/// holds exactly `0`).
pub const HIST_BUCKETS: usize = 64;

static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's counter shard, assigned on first use. `const`
    /// initialisation keeps first access allocation-free.
    static THREAD_SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

fn thread_shard() -> usize {
    THREAD_SHARD.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed) & (SHARDS - 1);
            s.set(v);
            v
        }
    })
}

/// One cache line per shard so concurrent recorders do not false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// A monotonically increasing counter, sharded across cache lines.
#[derive(Clone)]
pub struct Counter {
    shards: Arc<[PaddedU64; SHARDS]>,
}

impl Counter {
    fn new() -> Self {
        Counter { shards: Arc::new(Default::default()) }
    }

    /// Adds `n` (one relaxed `fetch_add` on this thread's shard).
    pub fn add(&self, n: u64) {
        self.shards[thread_shard()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total across shards.
    pub fn value(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

/// A signed instantaneous value (in-flight sessions, live graph sizes).
#[derive(Clone)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    fn new() -> Self {
        Gauge { value: Arc::new(AtomicI64::new(0)) }
    }

    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

struct HistInner {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A log₂-bucketed histogram of `u64` samples (latencies in nanoseconds,
/// sizes in cells/bytes). Recording is three relaxed `fetch_add`s;
/// quantiles are derived from the bucket counts at snapshot time.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistInner>,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            inner: Arc::new(HistInner {
                buckets: [(); HIST_BUCKETS].map(|()| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        let b = (u64::BITS - v.leading_zeros()) as usize; // bit length; 0 → 0
        self.inner.buckets[b.min(HIST_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    fn freeze(&self, name: &str, labels: &str) -> HistogramSnapshot {
        let buckets: Vec<(u8, u64)> = self
            .inner
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i as u8, n))
            })
            .collect();
        let mut snap = HistogramSnapshot {
            name: name.to_string(),
            labels: labels.to_string(),
            count: buckets.iter().map(|&(_, n)| n).sum(),
            sum: self.inner.sum.load(Ordering::Relaxed),
            buckets,
            p50: 0,
            p90: 0,
            p99: 0,
        };
        snap.p50 = snap.quantile(0.50);
        snap.p90 = snap.quantile(0.90);
        snap.p99 = snap.quantile(0.99);
        snap
    }
}

/// Upper bound of log₂ bucket `b` (inclusive): the largest value with bit
/// length `b`. The last bucket (63) also absorbs bit-length-64 values, so
/// its bound is `u64::MAX`.
pub(crate) fn bucket_upper(b: u8) -> u64 {
    match b {
        0 => 0,
        63.. => u64::MAX,
        b => (1u64 << b) - 1,
    }
}

/// Frozen counter state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricValue {
    /// Metric name.
    pub name: String,
    /// Pre-rendered `key="value"` label list (may be empty).
    pub labels: String,
    /// The value.
    pub value: u64,
}

/// Frozen gauge state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeValue {
    /// Metric name.
    pub name: String,
    /// Pre-rendered `key="value"` label list (may be empty).
    pub labels: String,
    /// The value.
    pub value: i64,
}

/// Frozen histogram state: sparse non-empty log₂ buckets plus derived
/// quantiles (each quantile reported as its bucket's upper bound).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Pre-rendered `key="value"` label list (may be empty).
    pub labels: String,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// `(bucket index, samples)` for every non-empty bucket, ascending.
    pub buckets: Vec<(u8, u64)>,
    /// Derived 50th percentile (bucket upper bound).
    pub p50: u64,
    /// Derived 90th percentile (bucket upper bound).
    pub p90: u64,
    /// Derived 99th percentile (bucket upper bound).
    pub p99: u64,
}

impl HistogramSnapshot {
    /// The value at quantile `q` (`0.0..=1.0`), as the upper bound of the
    /// bucket containing the `⌈q·count⌉`-th sample.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(b, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_upper(b);
            }
        }
        bucket_upper(self.buckets.last().map_or(0, |&(b, _)| b))
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A frozen view of the whole registry (plus the tracer's slow-op log
/// when taken through [`crate::Obs::snapshot`]). Plain data: renderable
/// ([`MetricsSnapshot::to_prometheus`], [`MetricsSnapshot::to_json`]) and
/// wire-encodable by the service protocol.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// All counters, in registration order.
    pub counters: Vec<MetricValue>,
    /// All gauges, in registration order.
    pub gauges: Vec<GaugeValue>,
    /// All histograms, in registration order.
    pub histograms: Vec<HistogramSnapshot>,
    /// The slow-op log, oldest first (empty unless taken via
    /// [`crate::Obs::snapshot`]).
    pub slow_spans: Vec<crate::trace::SlowSpan>,
}

impl MetricsSnapshot {
    /// The counter named `name` (first label set), if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }

    /// The gauge named `name` (first label set), if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// The histogram named `name` with exactly `labels`, if present.
    pub fn histogram(&self, name: &str, labels: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name && h.labels == labels)
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Entry {
    name: String,
    labels: String,
    metric: Metric,
}

struct RegistryInner {
    entries: Vec<Entry>,
    /// `(name, labels)` → index into `entries` (get-or-register).
    by_key: HashMap<(String, String), usize>,
}

/// The metric registry. Cloning shares the underlying store; all methods
/// take `&self`.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry {
            inner: Arc::new(Mutex::new(RegistryInner {
                entries: Vec::new(),
                by_key: HashMap::new(),
            })),
        }
    }

    fn register<T: Clone>(
        &self,
        name: &str,
        labels: &str,
        make: impl FnOnce() -> T,
        wrap: impl FnOnce(T) -> Metric,
        unwrap: impl Fn(&Metric) -> Option<T>,
    ) -> T {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(&i) = inner.by_key.get(&(name.to_string(), labels.to_string())) {
            return unwrap(&inner.entries[i].metric).unwrap_or_else(|| {
                panic!("metric {name}{{{labels}}} re-registered as a different kind")
            });
        }
        let handle = make();
        let i = inner.entries.len();
        inner.entries.push(Entry {
            name: name.to_string(),
            labels: labels.to_string(),
            metric: wrap(handle.clone()),
        });
        inner.by_key.insert((name.to_string(), labels.to_string()), i);
        handle
    }

    /// Registers (or retrieves) an unlabeled counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, "")
    }

    /// Registers (or retrieves) a labeled counter.
    pub fn counter_with(&self, name: &str, labels: &str) -> Counter {
        self.register(name, labels, Counter::new, Metric::Counter, |m| match m {
            Metric::Counter(c) => Some(c.clone()),
            _ => None,
        })
    }

    /// Registers (or retrieves) an unlabeled gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, "")
    }

    /// Registers (or retrieves) a labeled gauge.
    pub fn gauge_with(&self, name: &str, labels: &str) -> Gauge {
        self.register(name, labels, Gauge::new, Metric::Gauge, |m| match m {
            Metric::Gauge(g) => Some(g.clone()),
            _ => None,
        })
    }

    /// Registers (or retrieves) an unlabeled histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, "")
    }

    /// Registers (or retrieves) a labeled histogram.
    pub fn histogram_with(&self, name: &str, labels: &str) -> Histogram {
        self.register(name, labels, Histogram::new, Metric::Histogram, |m| match m {
            Metric::Histogram(h) => Some(h.clone()),
            _ => None,
        })
    }

    /// Freezes every metric. Does not include tracer spans — use
    /// [`crate::Obs::snapshot`] for the full payload.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let mut snap = MetricsSnapshot::default();
        for e in &inner.entries {
            match &e.metric {
                Metric::Counter(c) => snap.counters.push(MetricValue {
                    name: e.name.clone(),
                    labels: e.labels.clone(),
                    value: c.value(),
                }),
                Metric::Gauge(g) => snap.gauges.push(GaugeValue {
                    name: e.name.clone(),
                    labels: e.labels.clone(),
                    value: g.value(),
                }),
                Metric::Histogram(h) => snap.histograms.push(h.freeze(&e.name, &e.labels)),
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_shard_and_sum() {
        let r = Registry::new();
        let c = r.counter("taco_edits_total");
        c.add(5);
        let c2 = r.counter("taco_edits_total"); // same metric
        c2.inc();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 4006);
        assert_eq!(r.snapshot().counter("taco_edits_total"), Some(4006));
    }

    #[test]
    fn gauges_track_in_flight() {
        let r = Registry::new();
        let g = r.gauge("taco_sessions");
        g.add(3);
        g.sub(1);
        assert_eq!(g.value(), 2);
        g.set(-7);
        assert_eq!(r.snapshot().gauge("taco_sessions"), Some(-7));
    }

    #[test]
    fn histogram_buckets_by_magnitude() {
        let r = Registry::new();
        let h = r.histogram("taco_latency_ns");
        for v in [0u64, 1, 1, 3, 100, 1000, u64::MAX] {
            h.record(v);
        }
        let snap = r.snapshot();
        let hs = snap.histogram("taco_latency_ns", "").unwrap();
        assert_eq!(hs.count, 7);
        assert_eq!(hs.sum, 0u64.wrapping_add(1 + 1 + 3 + 100 + 1000).wrapping_add(u64::MAX));
        // 0 → bucket 0; 1,1 → bucket 1; 3 → bucket 2; 100 → bucket 7;
        // 1000 → bucket 10; MAX → bucket 63.
        assert_eq!(hs.buckets, vec![(0, 1), (1, 2), (2, 1), (7, 1), (10, 1), (63, 1)]);
        assert_eq!(hs.quantile(0.5), bucket_upper(2)); // 4th of 7 samples
        assert_eq!(hs.p99, u64::MAX);
        assert!(hs.mean() > 0.0);
    }

    #[test]
    fn quantiles_of_empty_and_single() {
        let r = Registry::new();
        let h = r.histogram("h");
        assert_eq!(h.inner.count.load(Ordering::Relaxed), 0);
        let snap = r.snapshot().histogram("h", "").cloned().unwrap();
        assert_eq!(snap.quantile(0.99), 0);
        h.record(42);
        let snap = r.snapshot().histogram("h", "").cloned().unwrap();
        assert_eq!(snap.p50, bucket_upper(6));
        assert_eq!(snap.p99, bucket_upper(6));
    }

    #[test]
    fn empty_histogram_reports_zero_everywhere() {
        // An empty histogram must freeze to all-zero percentiles — not
        // the floor of some bucket, not a fall-through artifact.
        let r = Registry::new();
        let _ = r.histogram_with("empty", "k=\"v\"");
        let snap = r.snapshot().histogram("empty", "k=\"v\"").cloned().unwrap();
        assert_eq!((snap.count, snap.sum), (0, 0));
        assert_eq!((snap.p50, snap.p90, snap.p99), (0, 0, 0));
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(snap.quantile(q), 0, "q={q}");
        }
        assert_eq!(snap.mean(), 0.0);
        assert!(snap.buckets.is_empty());
    }

    #[test]
    fn top_bucket_saturates_and_clamps() {
        // Values with bit length 64 (top bit set) saturate into bucket 63
        // and report `u64::MAX` as their bound — never a wrapped shift.
        let r = Registry::new();
        let h = r.histogram("sat");
        for v in [1u64 << 63, (1u64 << 63) + 1, u64::MAX - 1, u64::MAX] {
            h.record(v);
        }
        let snap = r.snapshot().histogram("sat", "").cloned().unwrap();
        assert_eq!(snap.buckets, vec![(63, 4)]);
        assert_eq!((snap.p50, snap.p90, snap.p99), (u64::MAX, u64::MAX, u64::MAX));
        assert_eq!(snap.quantile(1.0), u64::MAX);
    }

    #[test]
    fn u64_max_does_not_overflow_the_bucketing() {
        // `64 − leading_zeros(u64::MAX)` is 64 — one past the last bucket
        // index. The clamp must land it in bucket 63, not index out of
        // bounds or wrap.
        let r = Registry::new();
        let h = r.histogram("max");
        h.record(u64::MAX);
        let snap = r.snapshot().histogram("max", "").cloned().unwrap();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.buckets, vec![(63, 1)]);
        assert_eq!(snap.p50, u64::MAX);
        // And the bound helper agrees out past the end.
        assert_eq!(bucket_upper(63), u64::MAX);
        assert_eq!(bucket_upper(u8::MAX), u64::MAX);
    }

    #[test]
    fn quantile_rank_clamps_at_both_ends() {
        let r = Registry::new();
        let h = r.histogram("clamp");
        h.record(1);
        h.record(1000);
        let snap = r.snapshot().histogram("clamp", "").cloned().unwrap();
        // q=0 still picks the first sample (rank clamps up to 1)…
        assert_eq!(snap.quantile(0.0), bucket_upper(1));
        // …and q=1 the last (rank clamps down to count).
        assert_eq!(snap.quantile(1.0), bucket_upper(10));
    }

    #[test]
    fn labels_separate_metrics() {
        let r = Registry::new();
        let a = r.gauge_with("taco_graph_edges", "book=\"a\"");
        let b = r.gauge_with("taco_graph_edges", "book=\"b\"");
        a.set(1);
        b.set(2);
        let snap = r.snapshot();
        let values: Vec<i64> =
            snap.gauges.iter().filter(|g| g.name == "taco_graph_edges").map(|g| g.value).collect();
        assert_eq!(values, vec![1, 2]);
    }

    #[test]
    fn bucket_upper_bounds() {
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(62), (1u64 << 62) - 1);
        assert_eq!(bucket_upper(63), u64::MAX);
        assert_eq!(bucket_upper(64), u64::MAX);
    }
}
