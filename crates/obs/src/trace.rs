//! The span tracer: a bounded, pre-allocated ring of fixed-size span
//! records plus a separate slow-op ring for spans over a configurable
//! threshold.
//!
//! Spans are causal: every record carries a 128-bit trace id plus its own
//! span id and its parent's span id, so a flat ring reconstructs into a
//! span *tree* per trace. Context propagates two ways:
//!
//! - **explicitly** — a [`TraceContext`] travels by value (it is four
//!   `u64`s) through message queues and the wire protocol;
//! - **ambiently** — [`TraceContext::enter`] installs a context in a
//!   thread-local slot, and every [`Tracer::record`] call on that thread
//!   parents itself under it until the guard drops. Layers that predate
//!   tracing (engine levels, WAL appends) need no signature changes.
//!
//! Ids come from a splitmix64 stream seeded by
//! [`TracerOptions::id_seed`], so a fixed seed plus a [`ObsClock::Manual`]
//! clock makes whole span trees reproducible in tests. Recording stays
//! allocation-free: ids are copied by value into fixed-size records.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// What a span measures — the hierarchy level / subsystem tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SpanCat {
    /// A whole workbook recalculation.
    Recalc = 0,
    /// One sheet SCC level within a recalculation.
    SheetLevel = 1,
    /// One intra-sheet cell-parallel level.
    CellLevel = 2,
    /// A demand-driven (viewport) recalculation.
    Demand = 3,
    /// One WAL record append.
    WalAppend = 4,
    /// One WAL fsync.
    WalFsync = 5,
    /// One WAL → snapshot compaction.
    Compaction = 6,
    /// One service request (decode → dispatch → response ready).
    Request = 7,
    /// One snapshot publication (copy-on-write epoch swap).
    Publish = 8,
}

impl SpanCat {
    /// The category for wire byte `b`, if valid.
    pub fn from_u8(b: u8) -> Option<SpanCat> {
        Some(match b {
            0 => SpanCat::Recalc,
            1 => SpanCat::SheetLevel,
            2 => SpanCat::CellLevel,
            3 => SpanCat::Demand,
            4 => SpanCat::WalAppend,
            5 => SpanCat::WalFsync,
            6 => SpanCat::Compaction,
            7 => SpanCat::Request,
            8 => SpanCat::Publish,
            _ => return None,
        })
    }

    /// A stable lower-case label (exposition).
    pub fn label(self) -> &'static str {
        match self {
            SpanCat::Recalc => "recalc",
            SpanCat::SheetLevel => "sheet_level",
            SpanCat::CellLevel => "cell_level",
            SpanCat::Demand => "demand",
            SpanCat::WalAppend => "wal_append",
            SpanCat::WalFsync => "wal_fsync",
            SpanCat::Compaction => "compaction",
            SpanCat::Request => "request",
            SpanCat::Publish => "publish",
        }
    }
}

/// A causal coordinate: which trace a span belongs to, the span's own id,
/// and the id of the span it nests under. Four words, `Copy`, and cheap
/// enough to thread through queues and wire frames by value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceContext {
    /// High half of the 128-bit trace id.
    pub trace_hi: u64,
    /// Low half of the 128-bit trace id.
    pub trace_lo: u64,
    /// This span's id.
    pub span_id: u64,
    /// The enclosing span's id (0 at a trace root).
    pub parent_id: u64,
}

thread_local! {
    /// The ambient context of the current thread; [`Tracer::record`]
    /// parents every span under it.
    static CURRENT: Cell<TraceContext> = const { Cell::new(TraceContext::NONE) };
}

impl TraceContext {
    /// The absent context (all zeros).
    pub const NONE: TraceContext =
        TraceContext { trace_hi: 0, trace_lo: 0, span_id: 0, parent_id: 0 };

    /// Whether this is the absent context.
    pub fn is_none(self) -> bool {
        self.trace_hi == 0 && self.trace_lo == 0
    }

    /// The thread's current ambient context.
    pub fn current() -> TraceContext {
        CURRENT.with(Cell::get)
    }

    /// Installs `self` as the thread's ambient context until the guard
    /// drops (the previous context is restored, so guards nest).
    pub fn enter(self) -> ContextGuard {
        let prev = CURRENT.with(|c| c.replace(self));
        ContextGuard { prev }
    }
}

/// Restores the previous ambient [`TraceContext`] on drop.
pub struct ContextGuard {
    prev: TraceContext,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// One completed span: fixed-size, copyable, allocation-free to record.
/// (`name` becomes an owned `String` only when a snapshot crosses the
/// wire — see the service protocol.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static operation name (`"recalc"`, `"wal.append"`, …).
    pub name: &'static str,
    /// Hierarchy / subsystem tag.
    pub cat: SpanCat,
    /// High half of the owning trace id.
    pub trace_hi: u64,
    /// Low half of the owning trace id.
    pub trace_lo: u64,
    /// This span's id.
    pub span_id: u64,
    /// The parent span's id (0 at a trace root).
    pub parent_id: u64,
    /// Start, in nanoseconds on the tracer's clock.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// First payload word (level index, request tag, record count…).
    pub a: u64,
    /// Second payload word (level size, byte count…).
    pub b: u64,
}

/// An owned, wire-friendly copy of a [`SpanRecord`]: snapshots and the
/// protocol layer carry these (ring records keep `&'static str` names,
/// which cannot round-trip a decode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowSpan {
    /// Static span name, owned.
    pub name: String,
    /// What phase the span covers.
    pub cat: SpanCat,
    /// High half of the owning trace id.
    pub trace_hi: u64,
    /// Low half of the owning trace id.
    pub trace_lo: u64,
    /// This span's id.
    pub span_id: u64,
    /// The parent span's id (0 at a trace root).
    pub parent_id: u64,
    /// Start stamp on the tracer clock (ns).
    pub start_ns: u64,
    /// Duration (ns).
    pub dur_ns: u64,
    /// First payload word.
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

impl From<SpanRecord> for SlowSpan {
    fn from(r: SpanRecord) -> SlowSpan {
        SlowSpan {
            name: r.name.to_string(),
            cat: r.cat,
            trace_hi: r.trace_hi,
            trace_lo: r.trace_lo,
            span_id: r.span_id,
            parent_id: r.parent_id,
            start_ns: r.start_ns,
            dur_ns: r.dur_ns,
            a: r.a,
            b: r.b,
        }
    }
}

/// A bounded snapshot of the tracer's two rings, ready for exposition
/// ([`crate::MetricsSnapshot`]-style owned copies). Sizes are bounded by
/// the ring capacities, so a dump can never exceed
/// `span_capacity + slow_capacity` spans.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceDump {
    /// The main ring, oldest-first.
    pub recent: Vec<SlowSpan>,
    /// The slow-op log, oldest-first. Slow *requests* retain their full
    /// subtree here (every same-trace span still in the main ring is
    /// copied alongside the root), so a slow request stays explainable
    /// after the main ring has moved on.
    pub slow: Vec<SlowSpan>,
}

impl TraceDump {
    /// Total spans across both rings.
    pub fn span_count(&self) -> usize {
        self.recent.len() + self.slow.len()
    }

    /// The direct children of `parent` among `spans` (tree reconstruction
    /// helper: match on trace id + parent pointer).
    pub fn children_of<'a>(spans: &'a [SlowSpan], parent: &SlowSpan) -> Vec<&'a SlowSpan> {
        spans
            .iter()
            .filter(|s| {
                s.trace_hi == parent.trace_hi
                    && s.trace_lo == parent.trace_lo
                    && s.parent_id == parent.span_id
            })
            .collect()
    }
}

/// The injected time source (à la the engine's `EvalClock`).
#[derive(Debug, Clone)]
pub enum ObsClock {
    /// Real monotonic time, anchored at tracer construction.
    Monotonic,
    /// A shared nanosecond counter the caller advances (deterministic
    /// tests).
    Manual(Arc<AtomicU64>),
}

/// Tracer sizing and clock options.
#[derive(Debug, Clone)]
pub struct TracerOptions {
    /// Capacity of the main span ring (0 disables span recording).
    pub span_capacity: usize,
    /// Capacity of the slow-op ring.
    pub slow_capacity: usize,
    /// Spans with `dur_ns >= slow_threshold_ns` are copied into the
    /// slow-op ring.
    pub slow_threshold_ns: u64,
    /// The time source.
    pub clock: ObsClock,
    /// Seed for the splitmix64 trace/span id stream. A fixed seed (plus a
    /// [`ObsClock::Manual`] clock) makes span trees bit-reproducible.
    pub id_seed: u64,
}

impl Default for TracerOptions {
    fn default() -> Self {
        TracerOptions {
            span_capacity: 1024,
            slow_capacity: 64,
            slow_threshold_ns: 10_000_000, // 10 ms
            clock: ObsClock::Monotonic,
            id_seed: 0,
        }
    }
}

/// A fixed-capacity overwrite-oldest ring. The buffer is reserved up
/// front; pushes never allocate.
struct Ring {
    buf: Vec<SpanRecord>,
    cap: usize,
    /// Index of the oldest record once the ring has wrapped.
    head: usize,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Ring { buf: Vec::with_capacity(cap), cap, head: 0 }
    }

    fn push(&mut self, rec: SpanRecord) {
        if self.cap == 0 {
            return;
        }
        if self.buf.len() < self.cap {
            self.buf.push(rec); // within reserved capacity: no allocation
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.cap;
        }
    }

    /// Records oldest-first (allocates; cold path).
    fn to_vec(&self) -> Vec<SpanRecord> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

enum ClockSource {
    Monotonic(Instant),
    Manual(Arc<AtomicU64>),
}

struct TracerInner {
    clock: ClockSource,
    threshold_ns: u64,
    /// splitmix64 state for trace/span ids (advanced by the golden gamma
    /// per draw; one atomic add + a few shifts, allocation-free).
    ids: AtomicU64,
    ring: Mutex<Ring>,
    slow: Mutex<Ring>,
}

/// splitmix64's increment.
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// splitmix64 output mix.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The span tracer. Cloning shares the rings; recording is a mutex-guarded
/// copy into pre-allocated storage.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    /// A tracer with the given options.
    pub fn new(opts: TracerOptions) -> Self {
        Tracer {
            inner: Arc::new(TracerInner {
                clock: match opts.clock {
                    ObsClock::Monotonic => ClockSource::Monotonic(Instant::now()),
                    ObsClock::Manual(c) => ClockSource::Manual(c),
                },
                threshold_ns: opts.slow_threshold_ns,
                ids: AtomicU64::new(opts.id_seed),
                ring: Mutex::new(Ring::new(opts.span_capacity)),
                slow: Mutex::new(Ring::new(opts.slow_capacity)),
            }),
        }
    }

    /// Nanoseconds on the tracer's clock.
    pub fn now_ns(&self) -> u64 {
        match &self.inner.clock {
            ClockSource::Monotonic(origin) => {
                u64::try_from(origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
            }
            ClockSource::Manual(c) => c.load(Ordering::Relaxed),
        }
    }

    /// Draws one non-zero id from the splitmix64 stream.
    fn next_id(&self) -> u64 {
        let z = mix(self.inner.ids.fetch_add(GAMMA, Ordering::Relaxed).wrapping_add(GAMMA));
        if z == 0 {
            GAMMA // 0 means "absent" everywhere; remap the one bad draw
        } else {
            z
        }
    }

    /// A fresh root context: new 128-bit trace id, new span id, no parent.
    pub fn new_root(&self) -> TraceContext {
        TraceContext {
            trace_hi: self.next_id(),
            trace_lo: self.next_id(),
            span_id: self.next_id(),
            parent_id: 0,
        }
    }

    /// A child of `parent`: same trace, fresh span id, parented under
    /// `parent`'s span. A `NONE` parent starts a fresh root instead, so
    /// every span belongs to *some* trace.
    pub fn child_of(&self, parent: TraceContext) -> TraceContext {
        if parent.is_none() {
            return self.new_root();
        }
        TraceContext {
            trace_hi: parent.trace_hi,
            trace_lo: parent.trace_lo,
            span_id: self.next_id(),
            parent_id: parent.span_id,
        }
    }

    /// Records a completed span under the thread's ambient context (a
    /// fresh root when no context is installed). Allocation-free: both
    /// rings are pre-allocated and overwrite their oldest entry when full.
    pub fn record(
        &self,
        name: &'static str,
        cat: SpanCat,
        start_ns: u64,
        dur_ns: u64,
        a: u64,
        b: u64,
    ) {
        let ctx = self.child_of(TraceContext::current());
        self.record_at(name, cat, ctx, start_ns, dur_ns, a, b);
    }

    /// Records a completed span at an explicit causal coordinate (the
    /// span takes `ctx.span_id`; its parent is `ctx.parent_id`).
    /// Allocation-free like [`Tracer::record`].
    #[allow(clippy::too_many_arguments)]
    pub fn record_at(
        &self,
        name: &'static str,
        cat: SpanCat,
        ctx: TraceContext,
        start_ns: u64,
        dur_ns: u64,
        a: u64,
        b: u64,
    ) {
        let rec = SpanRecord {
            name,
            cat,
            trace_hi: ctx.trace_hi,
            trace_lo: ctx.trace_lo,
            span_id: ctx.span_id,
            parent_id: ctx.parent_id,
            start_ns,
            dur_ns,
            a,
            b,
        };
        self.inner.ring.lock().unwrap_or_else(PoisonError::into_inner).push(rec);
        if dur_ns >= self.inner.threshold_ns {
            let mut slow = self.inner.slow.lock().unwrap_or_else(PoisonError::into_inner);
            if rec.cat == SpanCat::Request && !ctx.is_none() {
                // A slow request keeps its full subtree: copy every
                // same-trace span still in the main ring (they were
                // recorded before their root, so they are already there).
                // Bounded by the main ring's capacity; allocation-free
                // (the slow ring is pre-allocated too).
                let ring = self.inner.ring.lock().unwrap_or_else(PoisonError::into_inner);
                for r in &ring.buf {
                    if r.trace_hi == rec.trace_hi
                        && r.trace_lo == rec.trace_lo
                        && r.span_id != rec.span_id
                    {
                        slow.push(*r);
                    }
                }
            }
            slow.push(rec);
        }
    }

    /// Starts a guard span that records itself (with the payload words set
    /// at drop time) when it goes out of scope. Purely measurement: the
    /// span parents under whatever is ambient *at drop time* but does not
    /// install itself; use [`Tracer::span_guard`] for tree-building spans.
    pub fn span(&self, name: &'static str, cat: SpanCat) -> Span<'_> {
        Span { tracer: self, name, cat, start_ns: self.now_ns(), a: 0, b: 0 }
    }

    /// Starts a tree-building RAII span: allocates a child context of the
    /// thread's ambient context, installs it ambiently (so spans recorded
    /// on this thread nest under it), and records itself on drop.
    pub fn span_guard(&self, name: &'static str, cat: SpanCat) -> SpanGuard {
        self.span_guard_under(name, cat, TraceContext::current())
    }

    /// [`Tracer::span_guard`] with an explicit parent context (wire
    /// propagation: the parent arrived by value, not ambiently).
    pub fn span_guard_under(
        &self,
        name: &'static str,
        cat: SpanCat,
        parent: TraceContext,
    ) -> SpanGuard {
        let ctx = self.child_of(parent);
        let prev = CURRENT.with(|c| c.replace(ctx));
        SpanGuard {
            tracer: self.clone(),
            name,
            cat,
            ctx,
            prev,
            start_ns: self.now_ns(),
            a: 0,
            b: 0,
        }
    }

    /// The main ring, oldest-first (cold; allocates the output).
    pub fn recent(&self) -> Vec<SpanRecord> {
        self.inner.ring.lock().unwrap_or_else(PoisonError::into_inner).to_vec()
    }

    /// The slow-op log, oldest-first (cold; allocates the output).
    pub fn slow(&self) -> Vec<SpanRecord> {
        self.inner.slow.lock().unwrap_or_else(PoisonError::into_inner).to_vec()
    }

    /// An owned snapshot of both rings (cold; allocates the output).
    pub fn dump(&self) -> TraceDump {
        TraceDump {
            recent: self.recent().into_iter().map(SlowSpan::from).collect(),
            slow: self.slow().into_iter().map(SlowSpan::from).collect(),
        }
    }
}

/// An in-flight span; records on drop. Set [`Span::a`] / [`Span::b`]
/// before it goes out of scope to attach payload words.
pub struct Span<'t> {
    tracer: &'t Tracer,
    name: &'static str,
    cat: SpanCat,
    start_ns: u64,
    /// First payload word, recorded at drop.
    pub a: u64,
    /// Second payload word, recorded at drop.
    pub b: u64,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let end = self.tracer.now_ns();
        let dur = end.saturating_sub(self.start_ns);
        self.tracer.record(self.name, self.cat, self.start_ns, dur, self.a, self.b);
    }
}

/// A tree-building RAII span (see [`Tracer::span_guard`]): owns a
/// [`TraceContext`], keeps it ambient on the creating thread for its
/// lifetime, and records itself on drop. Owns a tracer clone (one Arc
/// bump) so it can outlive the borrow it was created from.
pub struct SpanGuard {
    tracer: Tracer,
    name: &'static str,
    cat: SpanCat,
    ctx: TraceContext,
    prev: TraceContext,
    start_ns: u64,
    /// First payload word, recorded at drop.
    pub a: u64,
    /// Second payload word, recorded at drop.
    pub b: u64,
}

impl SpanGuard {
    /// The guard's causal coordinate (thread it through a queue to parent
    /// work happening on another thread under this span).
    pub fn context(&self) -> TraceContext {
        self.ctx
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
        let end = self.tracer.now_ns();
        let dur = end.saturating_sub(self.start_ns);
        self.tracer.record_at(self.name, self.cat, self.ctx, self.start_ns, dur, self.a, self.b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manual() -> (Tracer, Arc<AtomicU64>) {
        let clock = Arc::new(AtomicU64::new(0));
        let t = Tracer::new(TracerOptions {
            span_capacity: 4,
            slow_capacity: 2,
            slow_threshold_ns: 100,
            clock: ObsClock::Manual(clock.clone()),
            id_seed: 42,
        });
        (t, clock)
    }

    #[test]
    fn ring_overwrites_oldest() {
        let (t, _) = manual();
        for i in 0..6u64 {
            t.record("op", SpanCat::WalAppend, i, 1, i, 0);
        }
        let recent = t.recent();
        assert_eq!(recent.len(), 4);
        assert_eq!(recent.iter().map(|r| r.a).collect::<Vec<_>>(), vec![2, 3, 4, 5]);
    }

    #[test]
    fn slow_log_catches_threshold_crossers() {
        let (t, _) = manual();
        t.record("fast", SpanCat::WalAppend, 0, 99, 0, 0);
        t.record("slow1", SpanCat::WalFsync, 0, 100, 0, 0);
        t.record("slow2", SpanCat::Compaction, 0, 5000, 0, 0);
        t.record("slow3", SpanCat::Recalc, 0, 200, 0, 0);
        let slow = t.slow();
        assert_eq!(slow.len(), 2, "slow ring capacity bounds the log");
        assert_eq!(slow[0].name, "slow2");
        assert_eq!(slow[1].name, "slow3");
    }

    #[test]
    fn guard_span_measures_manual_clock() {
        let (t, clock) = manual();
        {
            let mut span = t.span("work", SpanCat::Recalc);
            clock.store(250, Ordering::Relaxed);
            span.a = 42;
        }
        let recent = t.recent();
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].dur_ns, 250);
        assert_eq!(recent[0].a, 42);
        // 250 ≥ threshold 100: the slow log has it too.
        assert_eq!(t.slow().len(), 1);
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let clock = Arc::new(AtomicU64::new(0));
        let t = Tracer::new(TracerOptions {
            span_capacity: 0,
            slow_capacity: 0,
            slow_threshold_ns: 0,
            clock: ObsClock::Manual(clock),
            id_seed: 0,
        });
        t.record("op", SpanCat::Request, 0, u64::MAX, 0, 0);
        assert!(t.recent().is_empty());
        assert!(t.slow().is_empty());
    }

    #[test]
    fn categories_round_trip() {
        for b in 0..=8u8 {
            match SpanCat::from_u8(b) {
                Some(cat) => assert_eq!(cat as u8, b),
                None => assert_eq!(b, 8),
            }
        }
    }

    #[test]
    fn span_guards_build_a_tree() {
        let (t, _) = manual();
        {
            let root = t.span_guard("root", SpanCat::Request);
            assert_eq!(TraceContext::current(), root.context());
            {
                let child = t.span_guard("child", SpanCat::Recalc);
                assert_eq!(child.context().parent_id, root.context().span_id);
                assert_eq!(child.context().trace_hi, root.context().trace_hi);
                // A plain record on this thread parents under the child.
                t.record("leaf", SpanCat::CellLevel, 0, 1, 0, 0);
            }
            // The child restored the root's ambient context.
            assert_eq!(TraceContext::current(), root.context());
        }
        assert_eq!(TraceContext::current(), TraceContext::NONE);
        let recent = t.recent();
        assert_eq!(recent.len(), 3);
        // Recorded leaf-first (drop order): leaf, child, root.
        let (leaf, child, root) = (&recent[0], &recent[1], &recent[2]);
        assert_eq!(root.parent_id, 0);
        assert_eq!(child.parent_id, root.span_id);
        assert_eq!(leaf.parent_id, child.span_id);
        assert!(recent.iter().all(|r| r.trace_hi == root.trace_hi && r.trace_lo == root.trace_lo));
    }

    #[test]
    fn fixed_seed_reproduces_span_ids() {
        let run = || {
            let (t, _) = manual();
            let root = t.new_root();
            let _g = root.enter();
            t.record("a", SpanCat::Recalc, 0, 1, 0, 0);
            t.record("b", SpanCat::Demand, 0, 1, 0, 0);
            t.recent()
        };
        assert_eq!(run(), run(), "same seed + same script must yield identical records");
    }

    #[test]
    fn explicit_context_round_trips_by_value() {
        let (t, _) = manual();
        let parent = t.new_root();
        // Simulate a queue hop: the context crosses by value, then work
        // on the "other thread" enters it.
        let carried = parent;
        {
            let _g = carried.enter();
            t.record("remote", SpanCat::WalAppend, 0, 1, 0, 0);
        }
        let recent = t.recent();
        assert_eq!(recent[0].parent_id, parent.span_id);
        assert_eq!(recent[0].trace_lo, parent.trace_lo);
    }

    #[test]
    fn slow_request_retains_its_subtree() {
        let clock = Arc::new(AtomicU64::new(0));
        let t = Tracer::new(TracerOptions {
            span_capacity: 16,
            slow_capacity: 16,
            slow_threshold_ns: 100,
            clock: ObsClock::Manual(clock),
            id_seed: 7,
        });
        let root = t.new_root();
        {
            let _g = root.enter();
            // Fast children: below the threshold on their own.
            t.record("child1", SpanCat::Recalc, 0, 10, 0, 0);
            t.record("child2", SpanCat::WalAppend, 10, 10, 0, 0);
        }
        // The root crosses the threshold: its whole subtree lands in the
        // slow log, children included.
        t.record_at("request", SpanCat::Request, root, 0, 500, 0, 0);
        let slow = t.slow();
        assert_eq!(slow.len(), 3, "{slow:?}");
        assert!(slow.iter().any(|s| s.name == "child1"));
        assert!(slow.iter().any(|s| s.name == "child2"));
        assert_eq!(slow.last().unwrap().name, "request");
    }
}
