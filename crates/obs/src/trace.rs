//! The span tracer: a bounded, pre-allocated ring of fixed-size span
//! records plus a separate slow-op ring for spans over a configurable
//! threshold.
//!
//! Spans are hierarchical by category, not by parent pointers: a workbook
//! recalculation records one [`SpanCat::Recalc`] span, each sheet level
//! inside it a [`SpanCat::SheetLevel`] span, and each intra-sheet
//! cell-parallel level a [`SpanCat::CellLevel`] span. Start timestamps
//! come from one shared clock, so containment reconstructs the tree; the
//! two payload words carry the level index / size so no strings are built
//! on the record path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// What a span measures — the hierarchy level / subsystem tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SpanCat {
    /// A whole workbook recalculation.
    Recalc = 0,
    /// One sheet SCC level within a recalculation.
    SheetLevel = 1,
    /// One intra-sheet cell-parallel level.
    CellLevel = 2,
    /// A demand-driven (viewport) recalculation.
    Demand = 3,
    /// One WAL record append.
    WalAppend = 4,
    /// One WAL fsync.
    WalFsync = 5,
    /// One WAL → snapshot compaction.
    Compaction = 6,
    /// One service request (decode → dispatch → response ready).
    Request = 7,
}

impl SpanCat {
    /// The category for wire byte `b`, if valid.
    pub fn from_u8(b: u8) -> Option<SpanCat> {
        Some(match b {
            0 => SpanCat::Recalc,
            1 => SpanCat::SheetLevel,
            2 => SpanCat::CellLevel,
            3 => SpanCat::Demand,
            4 => SpanCat::WalAppend,
            5 => SpanCat::WalFsync,
            6 => SpanCat::Compaction,
            7 => SpanCat::Request,
            _ => return None,
        })
    }

    /// A stable lower-case label (exposition).
    pub fn label(self) -> &'static str {
        match self {
            SpanCat::Recalc => "recalc",
            SpanCat::SheetLevel => "sheet_level",
            SpanCat::CellLevel => "cell_level",
            SpanCat::Demand => "demand",
            SpanCat::WalAppend => "wal_append",
            SpanCat::WalFsync => "wal_fsync",
            SpanCat::Compaction => "compaction",
            SpanCat::Request => "request",
        }
    }
}

/// One completed span: fixed-size, copyable, allocation-free to record.
/// (`name` becomes an owned `String` only when a snapshot crosses the
/// wire — see the service protocol.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static operation name (`"recalc"`, `"wal.append"`, …).
    pub name: &'static str,
    /// Hierarchy / subsystem tag.
    pub cat: SpanCat,
    /// Start, in nanoseconds on the tracer's clock.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// First payload word (level index, request tag, record count…).
    pub a: u64,
    /// Second payload word (level size, byte count…).
    pub b: u64,
}

/// An owned, wire-friendly copy of a [`SpanRecord`]: snapshots and the
/// protocol layer carry these (ring records keep `&'static str` names,
/// which cannot round-trip a decode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowSpan {
    /// Static span name, owned.
    pub name: String,
    /// What phase the span covers.
    pub cat: SpanCat,
    /// Start stamp on the tracer clock (ns).
    pub start_ns: u64,
    /// Duration (ns).
    pub dur_ns: u64,
    /// First payload word.
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

impl From<SpanRecord> for SlowSpan {
    fn from(r: SpanRecord) -> SlowSpan {
        SlowSpan {
            name: r.name.to_string(),
            cat: r.cat,
            start_ns: r.start_ns,
            dur_ns: r.dur_ns,
            a: r.a,
            b: r.b,
        }
    }
}

/// The injected time source (à la the engine's `EvalClock`).
#[derive(Debug, Clone)]
pub enum ObsClock {
    /// Real monotonic time, anchored at tracer construction.
    Monotonic,
    /// A shared nanosecond counter the caller advances (deterministic
    /// tests).
    Manual(Arc<AtomicU64>),
}

/// Tracer sizing and clock options.
#[derive(Debug, Clone)]
pub struct TracerOptions {
    /// Capacity of the main span ring (0 disables span recording).
    pub span_capacity: usize,
    /// Capacity of the slow-op ring.
    pub slow_capacity: usize,
    /// Spans with `dur_ns >= slow_threshold_ns` are copied into the
    /// slow-op ring.
    pub slow_threshold_ns: u64,
    /// The time source.
    pub clock: ObsClock,
}

impl Default for TracerOptions {
    fn default() -> Self {
        TracerOptions {
            span_capacity: 1024,
            slow_capacity: 64,
            slow_threshold_ns: 10_000_000, // 10 ms
            clock: ObsClock::Monotonic,
        }
    }
}

/// A fixed-capacity overwrite-oldest ring. The buffer is reserved up
/// front; pushes never allocate.
struct Ring {
    buf: Vec<SpanRecord>,
    cap: usize,
    /// Index of the oldest record once the ring has wrapped.
    head: usize,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Ring { buf: Vec::with_capacity(cap), cap, head: 0 }
    }

    fn push(&mut self, rec: SpanRecord) {
        if self.cap == 0 {
            return;
        }
        if self.buf.len() < self.cap {
            self.buf.push(rec); // within reserved capacity: no allocation
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.cap;
        }
    }

    /// Records oldest-first (allocates; cold path).
    fn to_vec(&self) -> Vec<SpanRecord> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

enum ClockSource {
    Monotonic(Instant),
    Manual(Arc<AtomicU64>),
}

struct TracerInner {
    clock: ClockSource,
    threshold_ns: u64,
    ring: Mutex<Ring>,
    slow: Mutex<Ring>,
}

/// The span tracer. Cloning shares the rings; recording is a mutex-guarded
/// copy into pre-allocated storage.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    /// A tracer with the given options.
    pub fn new(opts: TracerOptions) -> Self {
        Tracer {
            inner: Arc::new(TracerInner {
                clock: match opts.clock {
                    ObsClock::Monotonic => ClockSource::Monotonic(Instant::now()),
                    ObsClock::Manual(c) => ClockSource::Manual(c),
                },
                threshold_ns: opts.slow_threshold_ns,
                ring: Mutex::new(Ring::new(opts.span_capacity)),
                slow: Mutex::new(Ring::new(opts.slow_capacity)),
            }),
        }
    }

    /// Nanoseconds on the tracer's clock.
    pub fn now_ns(&self) -> u64 {
        match &self.inner.clock {
            ClockSource::Monotonic(origin) => {
                u64::try_from(origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
            }
            ClockSource::Manual(c) => c.load(Ordering::Relaxed),
        }
    }

    /// Records a completed span. Allocation-free: both rings are
    /// pre-allocated and overwrite their oldest entry when full.
    pub fn record(
        &self,
        name: &'static str,
        cat: SpanCat,
        start_ns: u64,
        dur_ns: u64,
        a: u64,
        b: u64,
    ) {
        let rec = SpanRecord { name, cat, start_ns, dur_ns, a, b };
        self.inner.ring.lock().unwrap_or_else(PoisonError::into_inner).push(rec);
        if dur_ns >= self.inner.threshold_ns {
            self.inner.slow.lock().unwrap_or_else(PoisonError::into_inner).push(rec);
        }
    }

    /// Starts a guard span that records itself (with the payload words set
    /// at drop time) when it goes out of scope.
    pub fn span(&self, name: &'static str, cat: SpanCat) -> Span<'_> {
        Span { tracer: self, name, cat, start_ns: self.now_ns(), a: 0, b: 0 }
    }

    /// The main ring, oldest-first (cold; allocates the output).
    pub fn recent(&self) -> Vec<SpanRecord> {
        self.inner.ring.lock().unwrap_or_else(PoisonError::into_inner).to_vec()
    }

    /// The slow-op log, oldest-first (cold; allocates the output).
    pub fn slow(&self) -> Vec<SpanRecord> {
        self.inner.slow.lock().unwrap_or_else(PoisonError::into_inner).to_vec()
    }
}

/// An in-flight span; records on drop. Set [`Span::a`] / [`Span::b`]
/// before it goes out of scope to attach payload words.
pub struct Span<'t> {
    tracer: &'t Tracer,
    name: &'static str,
    cat: SpanCat,
    start_ns: u64,
    /// First payload word, recorded at drop.
    pub a: u64,
    /// Second payload word, recorded at drop.
    pub b: u64,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let end = self.tracer.now_ns();
        let dur = end.saturating_sub(self.start_ns);
        self.tracer.record(self.name, self.cat, self.start_ns, dur, self.a, self.b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manual() -> (Tracer, Arc<AtomicU64>) {
        let clock = Arc::new(AtomicU64::new(0));
        let t = Tracer::new(TracerOptions {
            span_capacity: 4,
            slow_capacity: 2,
            slow_threshold_ns: 100,
            clock: ObsClock::Manual(clock.clone()),
        });
        (t, clock)
    }

    #[test]
    fn ring_overwrites_oldest() {
        let (t, _) = manual();
        for i in 0..6u64 {
            t.record("op", SpanCat::Request, i, 1, i, 0);
        }
        let recent = t.recent();
        assert_eq!(recent.len(), 4);
        assert_eq!(recent.iter().map(|r| r.a).collect::<Vec<_>>(), vec![2, 3, 4, 5]);
    }

    #[test]
    fn slow_log_catches_threshold_crossers() {
        let (t, _) = manual();
        t.record("fast", SpanCat::WalAppend, 0, 99, 0, 0);
        t.record("slow1", SpanCat::WalFsync, 0, 100, 0, 0);
        t.record("slow2", SpanCat::Compaction, 0, 5000, 0, 0);
        t.record("slow3", SpanCat::Recalc, 0, 200, 0, 0);
        let slow = t.slow();
        assert_eq!(slow.len(), 2, "slow ring capacity bounds the log");
        assert_eq!(slow[0].name, "slow2");
        assert_eq!(slow[1].name, "slow3");
    }

    #[test]
    fn guard_span_measures_manual_clock() {
        let (t, clock) = manual();
        {
            let mut span = t.span("work", SpanCat::Recalc);
            clock.store(250, Ordering::Relaxed);
            span.a = 42;
        }
        let recent = t.recent();
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].dur_ns, 250);
        assert_eq!(recent[0].a, 42);
        // 250 ≥ threshold 100: the slow log has it too.
        assert_eq!(t.slow().len(), 1);
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let clock = Arc::new(AtomicU64::new(0));
        let t = Tracer::new(TracerOptions {
            span_capacity: 0,
            slow_capacity: 0,
            slow_threshold_ns: 0,
            clock: ObsClock::Manual(clock),
        });
        t.record("op", SpanCat::Request, 0, u64::MAX, 0, 0);
        assert!(t.recent().is_empty());
        assert!(t.slow().is_empty());
    }

    #[test]
    fn categories_round_trip() {
        for b in 0..=8u8 {
            match SpanCat::from_u8(b) {
                Some(cat) => assert_eq!(cat as u8, b),
                None => assert_eq!(b, 8),
            }
        }
    }
}
