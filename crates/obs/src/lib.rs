//! `taco_obs` — the observability layer of the TACO serving path: a
//! metrics registry of sharded atomic counters, gauges, and log₂-bucketed
//! histograms, plus a bounded ring-buffer span tracer with an injected
//! monotonic clock.
//!
//! The design constraints come from the instrumented code, not from this
//! crate: the engine's recalc loop and the query paths are proven
//! allocation-free by a counting `#[global_allocator]` harness, and they
//! must stay that way with metrics attached. Every *record* operation
//! here — [`Counter::add`], [`Gauge::set`], [`Histogram::record`],
//! [`Tracer::record`] — therefore performs **zero heap allocations**:
//!
//! - counters are sharded over cache-line-padded atomics; a thread picks
//!   its shard once via a `const`-initialised thread-local (no lazy-TLS
//!   allocation) and afterwards records with one relaxed `fetch_add`;
//! - histograms bucket by `64 − leading_zeros(v)` into 64 fixed atomic
//!   buckets — recording is three relaxed `fetch_add`s, and p50/p90/p99
//!   are derived from the buckets only at snapshot time;
//! - spans write into a **pre-allocated** ring of fixed-size records
//!   (`&'static str` name, a category byte, two `u64` payload words)
//!   under a mutex held for the copy only; the ring overwrites its
//!   oldest entry when full and never grows. Spans slower than a
//!   configurable threshold are additionally copied into a separate
//!   slow-op ring so rare stalls survive ring churn.
//!
//! Registration ([`Registry::counter`] and friends) is the cold path: it
//! allocates the name, the shard block, and the handle once, up front, so
//! the hot path touches only pre-registered state. Handles are cheap
//! `Arc` clones; instrumented layers hold a struct of them and record
//! through field access.
//!
//! Time is injected, à la the engine's `EvalClock`: [`ObsClock::Monotonic`]
//! anchors an `Instant` at construction, [`ObsClock::Manual`] reads a
//! shared atomic nanosecond counter so tests can drive spans
//! deterministically.
//!
//! Exposition is pull-based: [`Registry::snapshot`] freezes every metric
//! into a plain-data [`MetricsSnapshot`], renderable as Prometheus text
//! ([`MetricsSnapshot::to_prometheus`]) or structured JSON
//! ([`MetricsSnapshot::to_json`]), and encodable on the service wire by
//! `taco_service` (this crate stays dependency-free; the codecs live with
//! the protocol).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expo;
pub mod metrics;
pub mod trace;

pub use metrics::{
    Counter, Gauge, GaugeValue, Histogram, HistogramSnapshot, MetricValue, MetricsSnapshot,
    Registry, HIST_BUCKETS,
};
pub use trace::{
    ContextGuard, ObsClock, SlowSpan, Span, SpanCat, SpanGuard, SpanRecord, TraceContext,
    TraceDump, Tracer, TracerOptions,
};

use std::sync::Arc;

/// Construction-time options for an [`Obs`] hub.
#[derive(Debug, Clone, Default)]
pub struct ObsOptions {
    /// Span tracer sizing, threshold, and clock.
    pub tracer: TracerOptions,
}

/// The observability hub one serving process shares across its layers: a
/// metrics [`Registry`] and a span [`Tracer`]. Layers receive an
/// `&Arc<Obs>`, register their handles once, and record through them.
pub struct Obs {
    /// The metrics registry (counters, gauges, histograms).
    pub metrics: Registry,
    /// The span tracer (bounded ring + slow-op log).
    pub tracer: Tracer,
}

impl Obs {
    /// A hub with the given options.
    pub fn new(opts: ObsOptions) -> Arc<Obs> {
        Arc::new(Obs { metrics: Registry::new(), tracer: Tracer::new(opts.tracer) })
    }

    /// A hub with default options (monotonic clock, 1024-span ring,
    /// 64-entry slow log, 10 ms slow threshold).
    pub fn new_default() -> Arc<Obs> {
        Obs::new(ObsOptions::default())
    }

    /// Freezes every metric plus the slow-op log into one snapshot (the
    /// payload of the wire `Metrics` request).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        snap.slow_spans = self.tracer.slow().into_iter().map(SlowSpan::from).collect();
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_snapshot_includes_slow_spans() {
        let clock = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let obs = Obs::new(ObsOptions {
            tracer: TracerOptions {
                clock: ObsClock::Manual(clock.clone()),
                slow_threshold_ns: 100,
                ..TracerOptions::default()
            },
        });
        obs.metrics.counter("taco_test_total").add(3);
        obs.tracer.record("fast", SpanCat::Request, 0, 50, 0, 0);
        obs.tracer.record("slow", SpanCat::Request, 0, 500, 7, 0);
        let snap = obs.snapshot();
        assert_eq!(snap.counters.iter().find(|c| c.name == "taco_test_total").unwrap().value, 3);
        assert_eq!(snap.slow_spans.len(), 1);
        assert_eq!(snap.slow_spans[0].name, "slow");
        assert_eq!(snap.slow_spans[0].a, 7);
    }
}
