//! Exposition: rendering a [`MetricsSnapshot`] as Prometheus text format
//! or as a structured JSON document, and a [`TraceDump`] as Chrome
//! `trace_event` JSON (loadable in `chrome://tracing` / Perfetto). All
//! renderers are cold paths — they run when a snapshot is requested,
//! never while recording.

use crate::metrics::{bucket_upper, MetricsSnapshot};
use crate::trace::{SlowSpan, TraceDump};
use std::fmt::Write as _;

fn write_name(out: &mut String, name: &str, labels: &str) {
    out.push_str(name);
    if !labels.is_empty() {
        let _ = write!(out, "{{{labels}}}");
    }
}

/// `labels` plus one more `key="value"` pair, comma-joined.
fn labels_plus(labels: &str, extra: &str) -> String {
    if labels.is_empty() {
        extra.to_string()
    } else {
        format!("{labels},{extra}")
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl MetricsSnapshot {
    /// Renders the snapshot in Prometheus text exposition format:
    /// counters and gauges as single samples, histograms as cumulative
    /// `_bucket{le="…"}` series plus `_sum` / `_count`, and the derived
    /// quantiles as `_p50` / `_p90` / `_p99` gauges.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            let _ = writeln!(out, "# TYPE {} counter", c.name);
            write_name(&mut out, &c.name, &c.labels);
            let _ = writeln!(out, " {}", c.value);
        }
        for g in &self.gauges {
            let _ = writeln!(out, "# TYPE {} gauge", g.name);
            write_name(&mut out, &g.name, &g.labels);
            let _ = writeln!(out, " {}", g.value);
        }
        for h in &self.histograms {
            let _ = writeln!(out, "# TYPE {} histogram", h.name);
            let mut cumulative = 0u64;
            for &(b, n) in &h.buckets {
                cumulative += n;
                let le = labels_plus(&h.labels, &format!("le=\"{}\"", bucket_upper(b)));
                let _ = writeln!(out, "{}_bucket{{{le}}} {cumulative}", h.name);
            }
            let le = labels_plus(&h.labels, "le=\"+Inf\"");
            let _ = writeln!(out, "{}_bucket{{{le}}} {}", h.name, h.count);
            write_name(&mut out, &format!("{}_sum", h.name), &h.labels);
            let _ = writeln!(out, " {}", h.sum);
            write_name(&mut out, &format!("{}_count", h.name), &h.labels);
            let _ = writeln!(out, " {}", h.count);
            for (q, v) in [("p50", h.p50), ("p90", h.p90), ("p99", h.p99)] {
                write_name(&mut out, &format!("{}_{q}", h.name), &h.labels);
                let _ = writeln!(out, " {v}");
            }
        }
        out
    }

    /// Renders the snapshot as a structured JSON document with
    /// `counters`, `gauges`, `histograms`, and `slow_spans` sections.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":[");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"labels\":\"{}\",\"value\":{}}}",
                json_escape(&c.name),
                json_escape(&c.labels),
                c.value
            );
        }
        out.push_str("],\"gauges\":[");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"labels\":\"{}\",\"value\":{}}}",
                json_escape(&g.name),
                json_escape(&g.labels),
                g.value
            );
        }
        out.push_str("],\"histograms\":[");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"labels\":\"{}\",\"count\":{},\"sum\":{},\
                 \"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                json_escape(&h.name),
                json_escape(&h.labels),
                h.count,
                h.sum,
                h.p50,
                h.p90,
                h.p99
            );
            for (j, &(b, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{},{}]", bucket_upper(b), n);
            }
            out.push_str("]}");
        }
        out.push_str("],\"slow_spans\":[");
        for (i, s) in self.slow_spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"trace\":\"{:016x}{:016x}\",\
                 \"span_id\":{},\"parent_id\":{},\
                 \"start_ns\":{},\"dur_ns\":{},\"a\":{},\"b\":{}}}",
                json_escape(&s.name),
                s.cat.label(),
                s.trace_hi,
                s.trace_lo,
                s.span_id,
                s.parent_id,
                s.start_ns,
                s.dur_ns,
                s.a,
                s.b
            );
        }
        out.push_str("]}");
        out
    }
}

/// One span as a Chrome `trace_event` complete event (`"ph":"X"`).
/// Timestamps are microseconds (the format's unit); sub-µs durations
/// render fractionally so nothing rounds to invisible.
fn write_chrome_event(out: &mut String, s: &SlowSpan) {
    let ts = s.start_ns as f64 / 1000.0;
    let dur = s.dur_ns as f64 / 1000.0;
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\
         \"pid\":1,\"tid\":1,\"id\":\"{:016x}{:016x}\",\
         \"args\":{{\"span_id\":{},\"parent_id\":{},\"a\":{},\"b\":{}}}}}",
        json_escape(&s.name),
        s.cat.label(),
        s.trace_hi,
        s.trace_lo,
        s.span_id,
        s.parent_id,
        s.a,
        s.b
    );
}

impl TraceDump {
    /// Renders the dump in Chrome `trace_event` JSON (object form, one
    /// complete event per span; the 128-bit trace id travels as the
    /// event `id`, the span/parent ids in `args`). The output loads in
    /// `chrome://tracing` and Perfetto.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, s) in self.recent.iter().chain(self.slow.iter()).enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_chrome_event(&mut out, s);
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::metrics::Registry;
    use crate::trace::{SlowSpan, SpanCat};

    #[test]
    fn prometheus_text_has_types_buckets_and_quantiles() {
        let r = Registry::new();
        r.counter("taco_ops_total").add(12);
        r.gauge_with("taco_graph_edges", "book=\"demo\"").set(34);
        let h = r.histogram("taco_recalc_ns");
        h.record(5);
        h.record(900);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE taco_ops_total counter"));
        assert!(text.contains("taco_ops_total 12"));
        assert!(text.contains("taco_graph_edges{book=\"demo\"} 34"));
        assert!(text.contains("taco_recalc_ns_bucket{le=\"7\"} 1"));
        assert!(text.contains("taco_recalc_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("taco_recalc_ns_count 2"));
        assert!(text.contains("taco_recalc_ns_sum 905"));
        assert!(text.contains("taco_recalc_ns_p99 1023"));
    }

    #[test]
    fn json_is_structurally_sound() {
        let r = Registry::new();
        r.counter("c").inc();
        r.histogram("h").record(3);
        let mut snap = r.snapshot();
        snap.slow_spans.push(SlowSpan {
            name: "recalc".into(),
            cat: SpanCat::Recalc,
            trace_hi: 0xDEAD,
            trace_lo: 0xBEEF,
            span_id: 5,
            parent_id: 0,
            start_ns: 1,
            dur_ns: 2,
            a: 3,
            b: 4,
        });
        let json = snap.to_json();
        // Balanced braces/brackets and the expected sections.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in ["\"counters\":", "\"gauges\":", "\"histograms\":", "\"slow_spans\":"] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("\"cat\":\"recalc\""));
        assert!(json.contains("\"buckets\":[[3,1]]"));
    }

    #[test]
    fn chrome_trace_export_is_balanced_and_complete() {
        use crate::trace::{ObsClock, Tracer, TracerOptions};
        use std::sync::atomic::AtomicU64;
        use std::sync::Arc;
        let t = Tracer::new(TracerOptions {
            clock: ObsClock::Manual(Arc::new(AtomicU64::new(0))),
            slow_threshold_ns: 1_000,
            id_seed: 9,
            ..TracerOptions::default()
        });
        t.record("fast", SpanCat::Recalc, 0, 10, 1, 2);
        t.record("slow\"quoted\"", SpanCat::WalFsync, 10, 5_000, 3, 4);
        let dump = t.dump();
        let json = dump.to_chrome_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count(), "{json}");
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(
            json.matches("\"ph\":\"X\"").count(),
            dump.span_count(),
            "one complete event per span: {json}"
        );
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("slow\\\"quoted\\\""), "names are escaped: {json}");
    }

    #[test]
    fn json_escapes_label_text() {
        let r = Registry::new();
        r.counter_with("c", "book=\"a\\b\"").inc();
        let json = r.snapshot().to_json();
        assert!(json.contains("book=\\\"a\\\\b\\\""), "got {json}");
    }
}
