//! Benchmark workloads for the TACO reproduction.
//!
//! The paper evaluates on two real corpora: 593 large Enron `xls` files and
//! 2,238 large Github `xlsx` files. Neither ships with this repository, so
//! [`generator`] synthesizes spreadsheets whose *dependency structure*
//! matches what the paper reports — region-by-region autofill runs of the
//! four basic patterns, cumulative totals, fixed-table lookups, chains,
//! derived columns, the multi-reference Fig. 2 shape, and noise — with
//! per-sheet sizes and tail behaviour (max dependents, longest paths)
//! shaped like Fig. 1. [`corpus`] provides the calibrated `enron_like()`
//! and `github_like()` presets; [`stats`] measures the Fig. 1 metrics;
//! [`workbook`] assembles sheets into multi-sheet workbooks with a
//! tunable fraction of cross-sheet FF/chain dependencies; [`persistence`]
//! emits full edit scripts (values + formula text) for the save → edit
//! burst → crash-simulated reopen workload; [`service`] emits
//! deterministic multi-client read/write scripts (reader-heavy,
//! writer-heavy, and mixed presets with zipf-skewed cell targets) for the
//! `taco_service` serving layer, replayable in-process and over TCP.
//!
//! [`xlsx`] additionally loads *real* `.xlsx` files through `calamine` (the
//! Rust analogue of the Apache POI parser the paper's prototype uses), so
//! every experiment can also run against actual spreadsheets when
//! available.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod generator;
pub mod persistence;
pub mod service;
pub mod stats;
pub mod workbook;
pub mod xlsx;

pub use corpus::{enron_like, github_like, CorpusParams};
pub use generator::{Region, SheetParams, SyntheticSheet};
pub use persistence::{
    gen_persist_workload, persist_enron_like, persist_giant_sheet, persist_github_like,
    PersistParams, PersistWorkload,
};
pub use service::{
    gen_service_script, mixed, reader_heavy, writer_heavy, ClientOp, ServiceScript,
    ServiceScriptParams,
};
pub use stats::{fig1_buckets, SheetStats};
pub use workbook::{gen_workbook, CrossDep, SyntheticWorkbook, WorkbookParams};
