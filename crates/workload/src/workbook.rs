//! Multi-sheet workbook generator.
//!
//! Real Enron/Github files are workbooks, not lone sheets: each worksheet
//! carries its own pattern mix (which [`crate::generator`] reproduces),
//! and a fraction of formulae reach *across* sheets — rollups against a
//! fixed table on another sheet (cross-sheet FF) and hand-offs where each
//! sheet continues a running value from its predecessor (cross-sheet
//! chains). [`gen_workbook`] synthesizes both: per-sheet dependency
//! streams plus a [`CrossDep`] table, with every cross dependency pointing
//! from a lower-indexed sheet to a higher-indexed one so the sheet graph
//! stays acyclic and the engine's parallel scheduler has real levels to
//! exploit.

use crate::generator::{gen_sheet, SheetParams, SyntheticSheet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use taco_grid::{Cell, Range};

/// Column strip reserved for cross-sheet formula cells, far to the right
/// of anything the per-sheet generator allocates at realistic sizes.
const XCOL_BASE: u32 = 15_000;

/// One cross-sheet dependency: the formula at `dst_sheet!dep` references
/// the range `src_sheet!prec`. Sheet indices are positions in
/// [`SyntheticWorkbook::sheets`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrossDep {
    /// Index of the sheet holding the referenced range.
    pub src_sheet: usize,
    /// The referenced range on the source sheet.
    pub prec: Range,
    /// Index of the sheet holding the formula.
    pub dst_sheet: usize,
    /// The formula cell on the destination sheet.
    pub dep: Cell,
}

/// Parameters for one synthetic workbook.
#[derive(Debug, Clone)]
pub struct WorkbookParams {
    /// Workbook label (sheet `i` is named `"{name}-{i:02}"`).
    pub name: String,
    /// Number of sheets.
    pub sheets: usize,
    /// Per-sheet generator parameters (pattern mix, sizes).
    pub sheet: SheetParams,
    /// Fraction of each sheet's local dependency count emitted *again* as
    /// cross-sheet dependencies into that sheet (clamped to `[0, 0.5]`).
    pub cross_frac: f64,
    /// RNG seed; generation is fully deterministic in `(params)`.
    pub seed: u64,
}

impl Default for WorkbookParams {
    fn default() -> Self {
        WorkbookParams {
            name: "wb".to_string(),
            sheets: 8,
            sheet: SheetParams { target_deps: 4_000, ..SheetParams::default() },
            cross_frac: 0.05,
            seed: 0x3000,
        }
    }
}

/// A generated workbook: per-sheet dependency streams plus the cross-sheet
/// dependency table.
#[derive(Debug, Clone)]
pub struct SyntheticWorkbook {
    /// Workbook label.
    pub name: String,
    /// One generated sheet per index (each with its own pattern mix).
    pub sheets: Vec<SyntheticSheet>,
    /// Cross-sheet dependencies, all with `src_sheet < dst_sheet`.
    pub cross: Vec<CrossDep>,
}

impl SyntheticWorkbook {
    /// Total dependencies, local and cross.
    pub fn total_deps(&self) -> usize {
        self.sheets.iter().map(|s| s.deps.len()).sum::<usize>() + self.cross.len()
    }
}

/// Generates one workbook deterministically.
pub fn gen_workbook(params: &WorkbookParams) -> SyntheticWorkbook {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let sheets: Vec<SyntheticSheet> = (0..params.sheets)
        .map(|i| {
            let name = format!("{}-{i:02}", params.name);
            gen_sheet(&name, params.seed.wrapping_add(1 + i as u64), &params.sheet)
        })
        .collect();

    let frac = params.cross_frac.clamp(0.0, 0.5);
    let mut cross = Vec::new();
    for dst in 1..sheets.len() {
        let quota = (sheets[dst].deps.len() as f64 * frac).ceil() as u32;
        for k in 0..quota {
            // One reserved-strip row per cross dep, from row 2 down.
            let dep = Cell::new(XCOL_BASE + (dst as u32 % 200), 2 + k);
            if k % 2 == 0 {
                // Cross-sheet FF: a rollup over a fixed table on a random
                // earlier sheet (hot cells make good probe targets).
                let src = rng.gen_range(0..dst);
                let anchor = sheets[src]
                    .hot_cells
                    .get(k as usize % sheets[src].hot_cells.len().max(1))
                    .copied()
                    .unwrap_or(Cell::new(2, 2));
                let h = rng.gen_range(1..20);
                let prec = Range::from_coords(
                    anchor.col,
                    anchor.row,
                    anchor.col + rng.gen_range(0..2),
                    anchor.row + h,
                );
                cross.push(CrossDep { src_sheet: src, prec, dst_sheet: dst, dep });
            } else {
                // Cross-sheet chain: continue the predecessor sheet's
                // reserved strip, sheet 0 → 1 → 2 → … (the "carry the
                // running total forward" idiom).
                let prec_cell = Cell::new(XCOL_BASE + ((dst as u32 - 1) % 200), dep.row);
                cross.push(CrossDep {
                    src_sheet: dst - 1,
                    prec: Range::cell(prec_cell),
                    dst_sheet: dst,
                    dep,
                });
            }
        }
    }
    SyntheticWorkbook { name: params.name.clone(), sheets, cross }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> WorkbookParams {
        WorkbookParams {
            sheets: 4,
            sheet: SheetParams { target_deps: 500, max_run: 64, ..SheetParams::default() },
            cross_frac: 0.1,
            ..WorkbookParams::default()
        }
    }

    #[test]
    fn deterministic_for_same_params() {
        let a = gen_workbook(&small());
        let b = gen_workbook(&small());
        assert_eq!(a.cross, b.cross);
        for (x, y) in a.sheets.iter().zip(&b.sheets) {
            assert_eq!(x.deps, y.deps);
        }
        let c = gen_workbook(&WorkbookParams { seed: 9, ..small() });
        assert_ne!(a.cross, c.cross);
    }

    #[test]
    fn cross_deps_are_acyclic_and_scaled() {
        let wb = gen_workbook(&small());
        assert!(!wb.cross.is_empty());
        for d in &wb.cross {
            assert!(d.src_sheet < d.dst_sheet, "{d:?} must point forward");
            assert!(d.dst_sheet < wb.sheets.len());
        }
        // Quota ≈ cross_frac of each destination sheet's local stream.
        for dst in 1..wb.sheets.len() {
            let got = wb.cross.iter().filter(|d| d.dst_sheet == dst).count();
            let want = (wb.sheets[dst].deps.len() as f64 * 0.1).ceil() as usize;
            assert_eq!(got, want, "sheet {dst}");
        }
    }

    #[test]
    fn chain_deps_link_consecutive_sheets() {
        let wb = gen_workbook(&small());
        assert!(wb.cross.iter().any(|d| d.dst_sheet == d.src_sheet + 1 && d.prec.is_cell()));
    }

    #[test]
    fn total_deps_counts_both_kinds() {
        let wb = gen_workbook(&small());
        let local: usize = wb.sheets.iter().map(|s| s.deps.len()).sum();
        assert_eq!(wb.total_deps(), local + wb.cross.len());
    }
}
