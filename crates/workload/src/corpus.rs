//! Calibrated corpus presets standing in for the paper's Enron and Github
//! datasets.
//!
//! Substitution rationale (see DESIGN.md): the compression and query
//! algorithms only observe parsed dependencies, so what matters is the
//! *distribution of pattern structure and sheet sizes*, which these presets
//! reproduce at laptop scale:
//!
//! - **Enron-like** — `xls`-era sheets (≤ 65K rows): sizes log-uniform in
//!   `[10K, scale × 120K]` dependencies, pattern mix dominated by RR and
//!   FF (Table V's ordering RR ≫ FF ≫ RR-Chain ≫ FR ≫ RF);
//! - **Github-like** — `xlsx` sheets (≤ 1M rows): larger and more skewed,
//!   with longer chains and bigger lookup fan-outs (Fig. 1's heavier
//!   tails).

use crate::generator::{gen_sheet, SheetParams, SyntheticSheet};

/// Parameters for a whole corpus.
#[derive(Debug, Clone)]
pub struct CorpusParams {
    /// Corpus label used in report rows.
    pub name: &'static str,
    /// Number of sheets.
    pub sheets: usize,
    /// Smallest per-sheet dependency count.
    pub min_deps: u64,
    /// Largest per-sheet dependency count.
    pub max_deps: u64,
    /// Per-sheet generator parameters (weights, row limits).
    pub sheet: SheetParams,
    /// Per-sheet noise share is drawn log-uniform from this interval,
    /// spreading the remaining-edge fractions the way Table IV reports
    /// (tiny minimum, single-digit-percent mean).
    pub noise_range: (f64, f64),
    /// RNG seed for the whole corpus.
    pub seed: u64,
}

impl CorpusParams {
    /// Generates the corpus deterministically. Sheet sizes follow a
    /// log-uniform ladder between `min_deps` and `max_deps` (heavy small,
    /// thin large — matching the paper's "focus on large spreadsheets"
    /// filtered distribution).
    pub fn generate(&self) -> Vec<SyntheticSheet> {
        let mut out = Vec::with_capacity(self.sheets);
        let lo = (self.min_deps as f64).ln();
        let hi = (self.max_deps as f64).ln();
        for i in 0..self.sheets {
            // Quadratic skew toward the small end of the log scale.
            let t = (i as f64 + 0.5) / self.sheets as f64;
            let t = t * t;
            let deps = (lo + t * (hi - lo)).exp() as u64;
            let mut sp = self.sheet.clone();
            sp.target_deps = deps;
            // Cap run length so each sheet holds a healthy number of
            // regions (keeps every pattern kind represented).
            sp.max_run = sp.max_run.min((deps / 12).max(16) as u32);
            // Log-uniform noise share, deterministic per sheet index.
            let (nlo, nhi) = self.noise_range;
            let u = ((i as f64 * 0.6180339887498949).fract() + 0.5).fract();
            sp.noise_share = (nlo.ln() + u * (nhi.ln() - nlo.ln())).exp();
            let name = format!("{}-{:02}", self.name, i);
            out.push(gen_sheet(&name, self.seed.wrapping_add(i as u64), &sp));
        }
        out
    }

    /// Total dependencies across the corpus (approximate, pre-generation).
    pub fn approx_total(&self) -> u64 {
        let lo = (self.min_deps as f64).ln();
        let hi = (self.max_deps as f64).ln();
        (0..self.sheets)
            .map(|i| {
                let t = (i as f64 + 0.5) / self.sheets as f64;
                let t = t * t;
                (lo + t * (hi - lo)).exp() as u64
            })
            .sum()
    }
}

/// The Enron-like preset. `scale = 1.0` targets roughly one million total
/// dependencies over 24 sheets; benches pass smaller scales for quick runs.
pub fn enron_like(scale: f64) -> CorpusParams {
    CorpusParams {
        name: "enron",
        sheets: ((24.0 * scale).ceil() as usize).max(8),
        min_deps: 10_000,
        max_deps: ((120_000.0 * scale) as u64).max(20_000),
        sheet: SheetParams {
            target_deps: 0, // set per sheet
            max_row: 65_000,
            // [rr, fr, rf, ff, chain, derived, fig2] — RR ≫ FF ≫ chain ≫
            // FR ≫ RF per Table V.
            weights: [34, 5, 2, 22, 9, 16, 7, 1],
            max_run: 4_000,
            noise_share: 0.02,
        },
        noise_range: (0.002, 0.30),
        seed: 0xEA10,
    }
}

/// The Github-like preset: bigger sheets, heavier tails, longer chains.
pub fn github_like(scale: f64) -> CorpusParams {
    CorpusParams {
        name: "github",
        sheets: ((24.0 * scale).ceil() as usize).max(8),
        min_deps: 10_000,
        max_deps: ((400_000.0 * scale) as u64).max(40_000),
        sheet: SheetParams {
            target_deps: 0,
            max_row: 1_000_000,
            weights: [36, 4, 2, 24, 12, 12, 6, 1],
            max_run: 20_000,
            noise_share: 0.01,
        },
        noise_range: (0.0005, 0.15),
        seed: 0x617B,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_generation_is_deterministic() {
        let p = CorpusParams { sheets: 3, max_deps: 20_000, ..enron_like(0.2) };
        let a = p.generate();
        let b = p.generate();
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.deps, y.deps);
        }
    }

    #[test]
    fn sizes_follow_log_ladder() {
        let p = CorpusParams { sheets: 6, ..enron_like(0.3) };
        let sheets = p.generate();
        let sizes: Vec<usize> = sheets.iter().map(|s| s.deps.len()).collect();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1] + w[1] / 2), "roughly increasing: {sizes:?}");
        assert!(*sizes.first().unwrap() >= 9_000);
    }

    #[test]
    fn presets_differ_in_row_limits() {
        assert_eq!(enron_like(1.0).sheet.max_row, 65_000);
        assert_eq!(github_like(1.0).sheet.max_row, 1_000_000);
        assert!(github_like(1.0).max_deps > enron_like(1.0).max_deps);
    }
}
