//! Region-based synthetic spreadsheet generator.
//!
//! A sheet is a set of *regions*, each reproducing one formula-generation
//! idiom observed in real spreadsheets (§III-A "Applicability of the basic
//! patterns"): autofilled sliding windows (RR), cumulative totals (FR/RF),
//! fixed-range lookups (FF), increment chains (RR-Chain), derived columns
//! (the TACO-InRow shape), the multi-reference Fig. 2 grouping formula,
//! and unstructured noise. The generator emits plain dependencies — the
//! same `(referenced range → formula cell)` pairs a parser would extract —
//! plus the bookkeeping the benchmarks need (hot cells, longest chain).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use taco_core::{Cue, Dependency};
use taco_grid::{Cell, Range};

/// One structured block of formulae.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Region {
    /// Sliding windows: each formula at `(col, row)` references the block
    /// `width × height` anchored `left_off` columns to the left on its own
    /// row (RR; `height == 1 && width ≤ left_off` also matches In-Row).
    RrWindow {
        /// Formula column.
        col: u32,
        /// First formula row.
        row0: u32,
        /// Number of formulae.
        len: u32,
        /// Columns to the left where the window starts (≥ 1).
        left_off: u32,
        /// Window width in columns.
        width: u32,
        /// Window height in rows.
        height: u32,
    },
    /// Cumulative totals `SUM($T$row0:T row)` (FR, expanding window).
    FrCumulative {
        /// Formula column.
        col: u32,
        /// First formula row.
        row0: u32,
        /// Number of formulae.
        len: u32,
        /// Data column being accumulated.
        target_col: u32,
    },
    /// Reverse cumulative `SUM(T row:$T$last)` (RF, shrinking window).
    RfShrinking {
        /// Formula column.
        col: u32,
        /// First formula row.
        row0: u32,
        /// Number of formulae.
        len: u32,
        /// Data column.
        target_col: u32,
    },
    /// A column of lookups against one fixed table (FF).
    FfLookup {
        /// Formula column.
        col: u32,
        /// First formula row.
        row0: u32,
        /// Number of formulae.
        len: u32,
        /// The shared table range.
        table: Range,
    },
    /// An increment chain `X(r) = X(r-1) + 1` (RR-Chain).
    Chain {
        /// Chain column.
        col: u32,
        /// First formula row (references `row0 - 1`).
        row0: u32,
        /// Number of formulae.
        len: u32,
    },
    /// Derived column: `(col,row)` references `(src_col,row)` (In-Row RR).
    DerivedCol {
        /// Formula column.
        col: u32,
        /// First formula row.
        row0: u32,
        /// Number of formulae.
        len: u32,
        /// Source column.
        src_col: u32,
    },
    /// The Fig. 2 shape: `N(r) = IF(A(r)=A(r-1), N(r-1)+M(r), M(r))` —
    /// four references per formula, three RR runs plus one chain.
    Fig2 {
        /// Group-id column (`A`).
        a_col: u32,
        /// Amount column (`M`).
        m_col: u32,
        /// Running-total column (`N`).
        n_col: u32,
        /// First formula row (references `row0 - 1`).
        row0: u32,
        /// Number of formulae.
        len: u32,
    },
    /// Formulae on every *other* row, each referencing the cell to its
    /// left — the §V RR-GapOne shape (rare in practice).
    GapOneCol {
        /// Formula column.
        col: u32,
        /// First formula row.
        row0: u32,
        /// Number of formulae (rows covered = 2·len − 1).
        len: u32,
        /// Source column.
        src_col: u32,
    },
    /// One unstructured dependency.
    NoiseSingle {
        /// The referenced range.
        prec: Range,
        /// The formula cell.
        dep: Cell,
    },
}

impl Region {
    /// Number of dependencies this region emits.
    pub fn dep_count(&self) -> u64 {
        match self {
            Region::RrWindow { len, .. }
            | Region::FrCumulative { len, .. }
            | Region::RfShrinking { len, .. }
            | Region::FfLookup { len, .. }
            | Region::Chain { len, .. }
            | Region::DerivedCol { len, .. }
            | Region::GapOneCol { len, .. } => u64::from(*len),
            Region::Fig2 { len, .. } => 4 * u64::from(*len),
            Region::NoiseSingle { .. } => 1,
        }
    }

    /// Emits the dependencies of this region.
    pub fn emit(&self, out: &mut Vec<Dependency>) {
        match *self {
            Region::RrWindow { col, row0, len, left_off, width, height } => {
                let pc = col.saturating_sub(left_off).max(1);
                for k in 0..len {
                    let row = row0 + k;
                    let prec = Range::from_coords(pc, row, pc + width - 1, row + height - 1);
                    out.push(Dependency::new(prec, Cell::new(col, row)));
                }
            }
            Region::FrCumulative { col, row0, len, target_col } => {
                for k in 0..len {
                    let row = row0 + k;
                    let prec = Range::from_coords(target_col, row0, target_col, row);
                    out.push(Dependency {
                        prec,
                        dep: Cell::new(col, row),
                        cue: Cue { head_fixed: true, tail_fixed: false },
                    });
                }
            }
            Region::RfShrinking { col, row0, len, target_col } => {
                let last = row0 + len - 1;
                for k in 0..len {
                    let row = row0 + k;
                    let prec = Range::from_coords(target_col, row, target_col, last);
                    out.push(Dependency {
                        prec,
                        dep: Cell::new(col, row),
                        cue: Cue { head_fixed: false, tail_fixed: true },
                    });
                }
            }
            Region::FfLookup { col, row0, len, table } => {
                for k in 0..len {
                    out.push(Dependency {
                        prec: table,
                        dep: Cell::new(col, row0 + k),
                        cue: Cue { head_fixed: true, tail_fixed: true },
                    });
                }
            }
            Region::Chain { col, row0, len } => {
                for k in 0..len {
                    let row = row0 + k;
                    out.push(Dependency::new(
                        Range::cell(Cell::new(col, row - 1)),
                        Cell::new(col, row),
                    ));
                }
            }
            Region::DerivedCol { col, row0, len, src_col } => {
                for k in 0..len {
                    let row = row0 + k;
                    out.push(Dependency::new(
                        Range::cell(Cell::new(src_col, row)),
                        Cell::new(col, row),
                    ));
                }
            }
            Region::Fig2 { a_col, m_col, n_col, row0, len } => {
                for k in 0..len {
                    let row = row0 + k;
                    let dep = Cell::new(n_col, row);
                    // A(r-1):A(r) emitted as the two cell references the
                    // formula makes, matching IF(A r = A r-1, …).
                    out.push(Dependency::new(Range::cell(Cell::new(a_col, row)), dep));
                    out.push(Dependency::new(Range::cell(Cell::new(a_col, row - 1)), dep));
                    out.push(Dependency::new(Range::cell(Cell::new(m_col, row)), dep));
                    out.push(Dependency::new(Range::cell(Cell::new(n_col, row - 1)), dep));
                }
            }
            Region::GapOneCol { col, row0, len, src_col } => {
                for k in 0..len {
                    let row = row0 + 2 * k;
                    out.push(Dependency::new(
                        Range::cell(Cell::new(src_col, row)),
                        Cell::new(col, row),
                    ));
                }
            }
            Region::NoiseSingle { prec, dep } => {
                out.push(Dependency::new(prec, dep));
            }
        }
    }

    /// Cells worth probing for the "maximum dependents" experiment, plus
    /// the transitive-path length rooted there.
    fn hot_cells(&self) -> Vec<(Cell, u32)> {
        match *self {
            // Every lookup depends on the table head, but only directly:
            // path length 1.
            Region::FfLookup { table, .. } => vec![(table.head(), 1)],
            // Chain head transitively feeds the whole chain.
            Region::Chain { col, row0, len } => {
                vec![(Cell::new(col, row0 - 1), len)]
            }
            // Cumulative: the first data cell feeds every total.
            Region::FrCumulative { target_col, row0, .. } => {
                vec![(Cell::new(target_col, row0), 1)]
            }
            Region::RfShrinking { target_col, row0, len, .. } => {
                vec![(Cell::new(target_col, row0 + len - 1), 1)]
            }
            // Fig. 2: the first amount cell flows down the N chain.
            Region::Fig2 { m_col, n_col, row0, len, .. } => {
                vec![(Cell::new(m_col, row0), len), (Cell::new(n_col, row0 - 1), len)]
            }
            _ => Vec::new(),
        }
    }
}

/// Parameters for one synthetic sheet.
#[derive(Debug, Clone)]
pub struct SheetParams {
    /// Target number of dependencies (the paper filters to ≥ 10K).
    pub target_deps: u64,
    /// Maximum row index regions may occupy (66K for xls-era sheets, 1M
    /// for xlsx).
    pub max_row: u32,
    /// Relative weights for the structured region kinds:
    /// `[rr, fr, rf, ff, chain, derived, fig2, gap-one]`.
    pub weights: [u32; 8],
    /// Upper bound on a single region's formula run length.
    pub max_run: u32,
    /// Fraction of dependencies emitted as unstructured noise singles
    /// (hand-written formulae that do not compress). Real sheets vary
    /// wildly here, which is what spreads Table IV's fraction columns.
    pub noise_share: f64,
}

impl Default for SheetParams {
    fn default() -> Self {
        SheetParams {
            target_deps: 10_000,
            max_row: 65_000,
            weights: [30, 8, 4, 20, 10, 15, 8, 1],
            max_run: 5_000,
            noise_share: 0.02,
        }
    }
}

/// A generated sheet: its dependencies plus benchmark bookkeeping.
#[derive(Debug, Clone)]
pub struct SyntheticSheet {
    /// Sheet name (e.g. `"enron-07"`).
    pub name: String,
    /// All dependencies, in generation order (like a file parse).
    pub deps: Vec<Dependency>,
    /// Candidate cells for the Maximum-Dependents experiment.
    pub hot_cells: Vec<Cell>,
    /// The cell rooting the longest dependency path.
    pub longest_path_cell: Cell,
    /// Length (edges) of that path, as constructed.
    pub longest_path_len: u32,
}

/// Generates one sheet from seeded randomness; fully deterministic in
/// `(name, seed, params)`.
pub fn gen_sheet(name: &str, seed: u64, params: &SheetParams) -> SyntheticSheet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut deps: Vec<Dependency> = Vec::with_capacity(params.target_deps as usize);
    let mut hot: Vec<(Cell, u32)> = Vec::new();
    let mut emitted = 0u64;
    let noise_target = (params.target_deps as f64 * params.noise_share.clamp(0.0, 0.9)) as u64;
    let structured_target = params.target_deps - noise_target;
    // Each region gets its own column strip so regions do not collide;
    // strips advance left→right and wrap to a deeper row band if the sheet
    // runs out of columns.
    let mut next_col: u32 = 2;
    let mut band_row: u32 = 2;
    let total_weight: u32 = params.weights.iter().sum();
    // Guarantee every enabled kind appears at least once per sheet
    // (low-weight kinds like GapOne would otherwise vanish from small
    // corpora); after this seeding the weighted draw takes over.
    let mut unseeded_kinds: Vec<usize> =
        params.weights.iter().enumerate().filter(|&(_, &w)| w > 0).map(|(i, _)| i).collect();

    while emitted < structured_target {
        let remaining = structured_target - emitted;
        let run_cap = params.max_run.min(remaining.min(u64::from(params.max_row) - 2) as u32);
        let len = if run_cap <= 8 { run_cap.max(1) } else { rng.gen_range(8..=run_cap) };
        // Reserve a strip wide enough for the region (≤ 8 columns).
        if next_col + 8 >= taco_grid::MAX_COL {
            next_col = 2;
            band_row = band_row.saturating_add(params.max_run + 8);
        }
        let col = next_col + 4;
        let row0 = band_row.max(2);
        if row0 + 2 * len + 2 > params.max_row {
            // Band overflow: restart at the top with a fresh column strip.
            band_row = 2;
            next_col += 9;
            continue;
        }
        let kind = if let Some(k) = unseeded_kinds.pop() {
            k
        } else {
            let pick = rng.gen_range(0..total_weight);
            let mut acc = 0;
            let mut kind = 0usize;
            for (i, w) in params.weights.iter().enumerate() {
                acc += w;
                if pick < acc {
                    kind = i;
                    break;
                }
            }
            kind
        };
        let region = match kind {
            0 => Region::RrWindow {
                col,
                row0,
                len,
                left_off: rng.gen_range(1..=3),
                width: rng.gen_range(1..=3),
                height: rng.gen_range(1..=4),
            },
            1 => Region::FrCumulative { col, row0, len, target_col: col - 1 },
            2 => Region::RfShrinking { col, row0, len, target_col: col - 1 },
            3 => Region::FfLookup {
                col,
                row0,
                len,
                table: Range::from_coords(col - 3, row0, col - 2, row0 + rng.gen_range(1..20)),
            },
            4 => Region::Chain { col, row0: row0 + 1, len },
            5 => Region::DerivedCol { col, row0, len, src_col: col - 1 },
            6 => Region::Fig2 { a_col: col - 3, m_col: col - 1, n_col: col, row0: row0 + 1, len },
            _ => Region::GapOneCol { col, row0, len: (len / 2).max(2), src_col: col - 1 },
        };
        emitted += region.dep_count();
        region.emit(&mut deps);
        hot.extend(region.hot_cells());
        next_col += 9;
    }

    // Unstructured noise: hand-written one-off formulae scattered over the
    // occupied area, each with a distinct reference shape so none of them
    // pair up with the structured runs.
    let max_col = next_col.min(taco_grid::MAX_COL - 8) + 4;
    for _ in 0..noise_target {
        let dep = Cell::new(rng.gen_range(2..=max_col.max(3)), rng.gen_range(2..params.max_row));
        let pc = rng.gen_range(1..=max_col.max(3));
        let pr = rng.gen_range(1..params.max_row.saturating_sub(8).max(2));
        let prec = Range::from_coords(pc, pr, pc + rng.gen_range(0..2), pr + rng.gen_range(0..8));
        Region::NoiseSingle { prec, dep }.emit(&mut deps);
    }

    let (longest_path_cell, longest_path_len) =
        hot.iter().copied().max_by_key(|&(_, l)| l).unwrap_or((Cell::new(1, 1), 0));
    SyntheticSheet {
        name: name.to_string(),
        deps,
        hot_cells: hot.into_iter().map(|(c, _)| c).collect(),
        longest_path_cell,
        longest_path_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taco_core::{Config, FormulaGraph};

    #[test]
    fn deterministic_for_same_seed() {
        let p = SheetParams { target_deps: 2_000, ..Default::default() };
        let a = gen_sheet("s", 42, &p);
        let b = gen_sheet("s", 42, &p);
        assert_eq!(a.deps, b.deps);
        let c = gen_sheet("s", 43, &p);
        assert_ne!(a.deps, c.deps);
    }

    #[test]
    fn reaches_target_dep_count() {
        let p = SheetParams { target_deps: 5_000, ..Default::default() };
        let s = gen_sheet("s", 1, &p);
        assert!(s.deps.len() as u64 >= 5_000);
        assert!(s.deps.len() as u64 <= 5_000 + 4 * u64::from(p.max_run));
    }

    #[test]
    fn generated_sheets_compress_heavily() {
        let p = SheetParams { target_deps: 20_000, ..Default::default() };
        let s = gen_sheet("s", 7, &p);
        let taco = FormulaGraph::build(Config::taco_full(), s.deps.iter().copied());
        let st = taco.stats();
        // The paper reports remaining-edge fractions in the low percents.
        assert!(
            st.remaining_fraction() < 0.10,
            "expected heavy compression, got {:.3}",
            st.remaining_fraction()
        );
    }

    #[test]
    fn regions_emit_expected_counts() {
        for region in [
            Region::RrWindow { col: 5, row0: 2, len: 10, left_off: 2, width: 2, height: 3 },
            Region::FrCumulative { col: 5, row0: 2, len: 10, target_col: 4 },
            Region::RfShrinking { col: 5, row0: 2, len: 10, target_col: 4 },
            Region::FfLookup { col: 5, row0: 2, len: 10, table: Range::from_coords(1, 1, 2, 5) },
            Region::Chain { col: 5, row0: 2, len: 10 },
            Region::DerivedCol { col: 5, row0: 2, len: 10, src_col: 4 },
            Region::Fig2 { a_col: 1, m_col: 4, n_col: 5, row0: 2, len: 10 },
        ] {
            let mut v = Vec::new();
            region.emit(&mut v);
            assert_eq!(v.len() as u64, region.dep_count(), "{region:?}");
        }
    }

    #[test]
    fn chain_region_produces_chain_pattern() {
        let mut v = Vec::new();
        Region::Chain { col: 3, row0: 5, len: 50 }.emit(&mut v);
        let g = FormulaGraph::build(Config::taco_full(), v);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edges().next().unwrap().pattern(), taco_core::PatternType::RRChain);
    }

    #[test]
    fn fig2_region_compresses_to_few_edges() {
        let mut v = Vec::new();
        Region::Fig2 { a_col: 1, m_col: 13, n_col: 14, row0: 3, len: 1000 }.emit(&mut v);
        let g = FormulaGraph::build(Config::taco_full(), v);
        assert!(g.num_edges() <= 5, "Fig. 2 compresses to ≤5 edges, got {}", g.num_edges());
    }

    #[test]
    fn longest_path_metadata_is_consistent() {
        let p = SheetParams { target_deps: 5_000, ..Default::default() };
        let s = gen_sheet("s", 3, &p);
        assert!(s.longest_path_len > 0);
        assert!(s.hot_cells.contains(&s.longest_path_cell));
    }
}

#[cfg(test)]
mod gap_one_tests {
    use super::*;
    use taco_core::{Config, FormulaGraph, PatternType};

    #[test]
    fn gap_one_region_compresses_only_with_extension() {
        let mut v = Vec::new();
        Region::GapOneCol { col: 5, row0: 3, len: 20, src_col: 4 }.emit(&mut v);
        assert_eq!(v.len(), 20);
        // Full TACO (no gap pattern): 20 singles.
        let plain = FormulaGraph::build(Config::taco_full(), v.iter().copied());
        assert_eq!(plain.num_edges(), 20);
        // With the §V extension: one edge.
        let ext = FormulaGraph::build(Config::taco_with_gap_one(), v.iter().copied());
        assert_eq!(ext.num_edges(), 1);
        assert_eq!(ext.edges().next().unwrap().pattern(), PatternType::RRGapOne);
    }

    #[test]
    fn corpus_contains_some_gap_one_regions() {
        let sheets = crate::corpus::enron_like(0.3).generate();
        let mut reduced = 0;
        for s in &sheets {
            let g = FormulaGraph::build(Config::taco_with_gap_one(), s.deps.iter().copied());
            reduced += g.stats().reduced.rr_gap_one;
        }
        assert!(reduced > 0, "corpus should exercise the §V pattern");
    }
}
