//! The persistence workload: deterministic edit scripts for exercising
//! save → edit burst → crash-simulated reopen.
//!
//! Unlike [`crate::generator`], which emits parsed *dependencies* for
//! graph-level benchmarks, this module emits full [`EditRecord`]s —
//! values and formula source text — because persistence round trips the
//! whole engine state (cells, cached values, dirty sets) and the WAL
//! logs edits, not dependencies. The two presets mirror the corpus
//! presets' pattern mixes at engine scale: the Enron-like script leans
//! on sliding windows and chains, the Github-like script on cumulative
//! totals and fixed-table lookups with longer columns.
//!
//! Everything is a pure function of the parameters: the same
//! [`PersistParams`] always produce the same build script and the same
//! burst, which is what lets tests compare a reopened workbook against a
//! live one edit for edit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use taco_core::StructuralOp;
use taco_formula::Value;
use taco_grid::{Cell, Range};
use taco_store::EditRecord;

/// Parameters for one persistence workload.
#[derive(Debug, Clone)]
pub struct PersistParams {
    /// Label (sheet `i` is named `"{name}-{i:02}"`).
    pub name: &'static str,
    /// Number of sheets the build script creates.
    pub sheets: usize,
    /// Data rows per sheet.
    pub rows: u32,
    /// Weights for the formula regions, `[windows, cumulative, chain,
    /// lookup]` — the per-preset pattern mix.
    pub mix: [u32; 4],
    /// Emit cross-sheet rollups and carry chains between consecutive
    /// sheets.
    pub cross: bool,
    /// Number of edits in the post-save burst.
    pub burst_edits: usize,
    /// RNG seed for values and the burst.
    pub seed: u64,
}

/// Enron-like mix at engine scale: windows and chains dominate.
pub fn persist_enron_like() -> PersistParams {
    PersistParams {
        name: "enron",
        sheets: 4,
        rows: 96,
        mix: [4, 1, 3, 2],
        cross: true,
        burst_edits: 160,
        seed: 0xE0A1,
    }
}

/// Github-like mix at engine scale: longer columns, heavier cumulative
/// totals and lookups.
pub fn persist_github_like() -> PersistParams {
    PersistParams {
        name: "github",
        sheets: 3,
        rows: 160,
        mix: [2, 4, 1, 4],
        cross: true,
        burst_edits: 220,
        seed: 0x617C,
    }
}

/// One giant sheet, no cross-sheet edges: the adversarial case for
/// sheet-level parallel recalculation (the whole dirty set lives on a
/// single sheet, so only cell-level scheduling can spread the work) and
/// the natural case for demand-driven viewport recalc. Wide mix so the
/// leveler sees windows, cumulative totals, a long chain, and lookups
/// at once.
pub fn persist_giant_sheet() -> PersistParams {
    PersistParams {
        name: "giant",
        sheets: 1,
        rows: 512,
        mix: [4, 3, 2, 3],
        cross: false,
        burst_edits: 240,
        seed: 0x61A7,
    }
}

/// A generated workload: the build script, then the burst applied after
/// the first save.
#[derive(Debug, Clone)]
pub struct PersistWorkload {
    /// Preset label.
    pub name: &'static str,
    /// Edits that construct the workbook.
    pub build: Vec<EditRecord>,
    /// Post-save edit burst (value updates, formula rewrites, clears,
    /// structural row/column edits, a late sheet).
    pub burst: Vec<EditRecord>,
}

/// Generates the workload deterministically from its parameters.
pub fn gen_persist_workload(p: &PersistParams) -> PersistWorkload {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let mut build = Vec::new();
    for s in 0..p.sheets {
        let sheet = s as u32;
        build.push(EditRecord::AddSheet { name: format!("{}-{s:02}", p.name) });
        // Column A: the data column every region reads.
        for row in 1..=p.rows {
            build.push(set_num(sheet, 1, row, rng.gen_range(-500..500) as f64 / 10.0));
        }
        // Formula regions, one column each (B..=E); each mix weight
        // (0..=4) sets how many of every four rows carry that region, so
        // the presets really differ in pattern density.
        for row in 1..=p.rows {
            let dense = |w: u32| row % 4 < w.min(4);
            // Sliding window (RR): B_r = SUM(A_r:A_{r+2}).
            if dense(p.mix[0]) && row + 2 <= p.rows {
                build.push(set_formula(sheet, 2, row, format!("SUM(A{row}:A{})", row + 2)));
            }
            // Cumulative (FR): C_r = SUM($A$1:A_r).
            if dense(p.mix[1]) {
                build.push(set_formula(sheet, 3, row, format!("SUM($A$1:A{row})")));
            }
            // Chain (RR-Chain): D_r = D_{r-1} + A_r, every row so the
            // chain stays unbroken.
            if p.mix[2] > 0 {
                let src = if row == 1 { "A1".to_string() } else { format!("D{}+A{row}", row - 1) };
                build.push(set_formula(sheet, 4, row, src));
            }
            // Fixed lookup (FF): E_r = SUM($A$1:$A$8)*r — identical
            // reference per row, interning-friendly source prefix.
            if dense(p.mix[3]) {
                build.push(set_formula(sheet, 5, row, format!("SUM($A$1:$A$8)*{row}")));
            }
        }
        // Cross-sheet structure into the previous sheet.
        if p.cross && s > 0 {
            let prev = format!("{}-{:02}", p.name, s - 1);
            build.push(set_formula(sheet, 6, 1, format!("SUM('{prev}'!C1:C{})", p.rows)));
            build.push(set_formula(sheet, 6, 2, format!("'{prev}'!F2+D{}", p.rows)));
        } else if p.cross {
            build.push(set_formula(sheet, 6, 2, format!("D{}", p.rows)));
        }
    }

    // The burst: post-save edits of every WAL record kind.
    let mut burst = Vec::new();
    let mut sheet_count = p.sheets as u32;
    for k in 0..p.burst_edits {
        let sheet = rng.gen_range(0..sheet_count);
        let in_original = sheet < p.sheets as u32;
        match rng.gen_range(0..100u32) {
            // Mostly value updates in the data column.
            0..=59 if in_original => {
                let row = rng.gen_range(1..=p.rows);
                burst.push(set_num(sheet, 1, row, rng.gen_range(-5000..5000) as f64 / 7.0));
            }
            // Formula rewrites.
            60..=79 if in_original => {
                let row = rng.gen_range(1..=p.rows);
                burst.push(set_formula(sheet, 2, row, format!("SUM(A1:A{row})*2")));
            }
            // Range clears.
            80..=89 if in_original => {
                let row = rng.gen_range(1..p.rows);
                burst.push(EditRecord::ClearRange {
                    sheet,
                    range: Range::from_coords(2, row, 5, row + 1),
                });
            }
            // Structural row/column edits: shifts in the data region,
            // the occasional column delete that lands on a formula
            // column and leaves `#REF!`s behind — both must survive
            // WAL replay bit-identically.
            90..=93 if in_original => {
                let n = rng.gen_range(1..=2u32);
                let op = match rng.gen_range(0..4u32) {
                    0 => StructuralOp::InsertRows { at: rng.gen_range(2..=p.rows), n },
                    1 => StructuralOp::DeleteRows { at: rng.gen_range(2..=p.rows), n },
                    2 => StructuralOp::InsertCols { at: rng.gen_range(2..=6), n },
                    _ => StructuralOp::DeleteCols { at: rng.gen_range(5..=6), n: 1 },
                };
                burst.push(EditRecord::Structural { sheet, op });
            }
            // A late sheet plus an edit targeting it.
            94..=96 => {
                burst.push(EditRecord::AddSheet { name: format!("{}-late-{k}", p.name) });
                burst.push(set_num(sheet_count, 1, 1, k as f64));
                sheet_count += 1;
            }
            // Edits against late sheets (or fallthrough for them).
            _ => {
                burst.push(set_num(sheet, 1, rng.gen_range(1..=4), k as f64 / 3.0));
            }
        }
    }
    PersistWorkload { name: p.name, build, burst }
}

fn set_num(sheet: u32, col: u32, row: u32, v: f64) -> EditRecord {
    EditRecord::SetValue { sheet, cell: Cell::new(col, row), value: Value::Number(v) }
}

fn set_formula(sheet: u32, col: u32, row: u32, src: String) -> EditRecord {
    EditRecord::SetFormula { sheet, cell: Cell::new(col, row), src }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        let a = gen_persist_workload(&persist_enron_like());
        let b = gen_persist_workload(&persist_enron_like());
        assert_eq!(a.build, b.build);
        assert_eq!(a.burst, b.burst);
        let c = gen_persist_workload(&PersistParams { seed: 1, ..persist_enron_like() });
        assert_ne!(a.burst, c.burst);
    }

    #[test]
    fn presets_cover_every_record_kind() {
        for p in [persist_enron_like(), persist_github_like()] {
            let w = gen_persist_workload(&p);
            let all: Vec<&EditRecord> = w.build.iter().chain(&w.burst).collect();
            assert!(all.iter().any(|r| matches!(r, EditRecord::AddSheet { .. })));
            assert!(all.iter().any(|r| matches!(r, EditRecord::SetValue { .. })));
            assert!(all.iter().any(|r| matches!(r, EditRecord::SetFormula { .. })));
            assert!(all.iter().any(|r| matches!(r, EditRecord::ClearRange { .. })));
            assert!(all.iter().any(|r| matches!(r, EditRecord::Structural { .. })));
            // Cross-sheet formulae are present (quoted qualifier).
            assert!(all
                .iter()
                .any(|r| matches!(r, EditRecord::SetFormula { src, .. } if src.contains("'!"))));
        }
        // All four structural kinds appear across the presets' bursts
        // taken together (per-preset would make this hostage to seeds).
        let mut kinds = std::collections::HashSet::new();
        for p in [persist_enron_like(), persist_github_like(), persist_giant_sheet()] {
            for r in gen_persist_workload(&p).burst {
                if let EditRecord::Structural { op, .. } = r {
                    kinds.insert(std::mem::discriminant(&op));
                }
            }
        }
        assert_eq!(kinds.len(), 4, "every structural kind appears across the presets");
    }

    #[test]
    fn giant_sheet_preset_is_single_sheet_and_cross_free() {
        let p = persist_giant_sheet();
        assert_eq!(p.sheets, 1);
        let w = gen_persist_workload(&p);
        // No cross-sheet references anywhere in the build: the whole
        // graph lives on one sheet, which is the case that defeats
        // sheet-level parallelism.
        assert!(!w
            .build
            .iter()
            .any(|r| matches!(r, EditRecord::SetFormula { src, .. } if src.contains("'!"))));
        assert!(w.build.len() > 1000, "giant preset must be meaningfully large");
    }

    #[test]
    fn sheet_indices_stay_dense() {
        // Every record must target a sheet that exists at its point in
        // the script (AddSheet allocates the next dense index).
        for p in [persist_enron_like(), persist_github_like(), persist_giant_sheet()] {
            let w = gen_persist_workload(&p);
            let mut sheets = 0u32;
            for r in w.build.iter().chain(&w.burst) {
                match r {
                    EditRecord::AddSheet { .. } => sheets += 1,
                    EditRecord::SetValue { sheet, .. }
                    | EditRecord::SetFormula { sheet, .. }
                    | EditRecord::ClearRange { sheet, .. }
                    | EditRecord::Structural { sheet, .. } => {
                        assert!(*sheet < sheets, "record targets unborn sheet {sheet}");
                    }
                }
            }
        }
    }
}
