//! The service workload: deterministic multi-client scripts for the
//! `taco_service` layer, replayable both in-process and over TCP.
//!
//! A script is a **setup** edit list (builds the workbook every client
//! shares) plus one operation list **per client**. The generator's key
//! property is *commutativity across clients*: each client only ever
//! writes cells inside its own column pair, so any interleaving of the
//! per-client streams produces, after quiesce, the same final cell state
//! as running the concatenated script serially — which is exactly what
//! the service's concurrent property test asserts. Reads and
//! dependents/precedents probes range over the whole sheet (including
//! other clients' columns and the shared data column), and formulas
//! deliberately reference *other* clients' columns, so the commuting
//! writes still produce cross-client dataflow.
//!
//! Cell targets are **zipf-skewed** ([`zipf_row`]): row 1 is the hottest,
//! matching the contention profile of a shared dashboard sheet where
//! most traffic hits the header region. The three presets differ in
//! read/write mix: [`reader_heavy`] (~95% reads), [`writer_heavy`]
//! (~25% reads), and [`mixed`] (~70% reads).

use crate::persistence::{gen_persist_workload, PersistParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use taco_formula::Value;
use taco_grid::a1::col_to_letters;
use taco_grid::{Cell, Range};
use taco_store::EditRecord;

/// Parameters for one service script.
#[derive(Debug, Clone)]
pub struct ServiceScriptParams {
    /// Preset label.
    pub name: &'static str,
    /// Concurrent clients the script is split across.
    pub clients: usize,
    /// Operations per client.
    pub ops_per_client: usize,
    /// Data rows in the shared sheet.
    pub rows: u32,
    /// Reads per 1000 operations (the rest are writes).
    pub read_permille: u32,
    /// Zipf exponent ×100 for row targeting (e.g. 110 ⇒ s = 1.10;
    /// 0 = uniform).
    pub zipf_s_centi: u32,
    /// RNG seed.
    pub seed: u64,
}

/// ~95% reads: the dashboard-viewer crowd.
pub fn reader_heavy() -> ServiceScriptParams {
    ServiceScriptParams {
        name: "reader-heavy",
        clients: 4,
        ops_per_client: 200,
        rows: 64,
        read_permille: 950,
        zipf_s_centi: 110,
        seed: 0x5E71,
    }
}

/// ~25% reads: bulk data entry.
pub fn writer_heavy() -> ServiceScriptParams {
    ServiceScriptParams {
        name: "writer-heavy",
        clients: 4,
        ops_per_client: 200,
        rows: 64,
        read_permille: 250,
        zipf_s_centi: 110,
        seed: 0x3B1E,
    }
}

/// ~70% reads: a live sheet being edited while watched.
pub fn mixed() -> ServiceScriptParams {
    ServiceScriptParams {
        name: "mixed",
        clients: 4,
        ops_per_client: 200,
        rows: 64,
        read_permille: 700,
        zipf_s_centi: 110,
        seed: 0x717D,
    }
}

/// One client operation. Writes stay inside the issuing client's own
/// column pair; reads and probes range anywhere.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientOp {
    /// Read one cell.
    Get {
        /// The cell to read.
        cell: Cell,
    },
    /// Read the non-empty cells of a range.
    GetRange {
        /// The range to read.
        range: Range,
    },
    /// Transitive dependents probe.
    Dependents {
        /// The probe range.
        range: Range,
    },
    /// Transitive precedents probe.
    Precedents {
        /// The probe range.
        range: Range,
    },
    /// Read the dirty count.
    DirtyCount,
    /// Set a pure value (own columns only).
    SetValue {
        /// Target cell.
        cell: Cell,
        /// The value.
        value: f64,
    },
    /// Set a formula (own columns only).
    SetFormula {
        /// Target cell.
        cell: Cell,
        /// Formula source text.
        src: String,
    },
    /// Clear a small range (own columns only).
    ClearRange {
        /// The cleared range.
        range: Range,
    },
    /// Force a recalculation (also a write barrier).
    Recalc,
}

impl ClientOp {
    /// Whether the op mutates the workbook.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            ClientOp::SetValue { .. }
                | ClientOp::SetFormula { .. }
                | ClientOp::ClearRange { .. }
                | ClientOp::Recalc
        )
    }
}

/// A generated script: shared setup plus per-client op streams. All
/// operations target sheet 0 (named in [`ServiceScript::sheet`]).
#[derive(Debug, Clone)]
pub struct ServiceScript {
    /// Preset label.
    pub name: &'static str,
    /// The sheet every op targets.
    pub sheet: String,
    /// Edits that build the shared workbook (apply before serving).
    pub setup: Vec<EditRecord>,
    /// One op stream per client.
    pub clients: Vec<Vec<ClientOp>>,
}

impl ServiceScript {
    /// The client write ops flattened to [`EditRecord`]s in client order —
    /// the serial reference script for the equivalence test. `Recalc` ops
    /// contribute nothing (recalculation is derived state).
    pub fn serial_writes(&self) -> Vec<EditRecord> {
        let mut out = Vec::new();
        for ops in &self.clients {
            for op in ops {
                match op {
                    ClientOp::SetValue { cell, value } => out.push(EditRecord::SetValue {
                        sheet: 0,
                        cell: *cell,
                        value: Value::Number(*value),
                    }),
                    ClientOp::SetFormula { cell, src } => {
                        out.push(EditRecord::SetFormula { sheet: 0, cell: *cell, src: src.clone() })
                    }
                    ClientOp::ClearRange { range } => {
                        out.push(EditRecord::ClearRange { sheet: 0, range: *range })
                    }
                    _ => {}
                }
            }
        }
        out
    }
}

/// Zipf-skewed row draw over `1..=rows` with exponent `s_centi / 100`
/// (integer CDF; `s_centi == 0` degrades to uniform). Row 1 is hottest.
pub fn zipf_row(rng: &mut StdRng, rows: u32, s_centi: u32) -> u32 {
    if s_centi == 0 || rows <= 1 {
        return rng.gen_range(1..=rows.max(1));
    }
    // Integer weights ∝ 1/k^s, scaled so the head has weight 1e6.
    let s = f64::from(s_centi) / 100.0;
    let weights: Vec<u64> =
        (1..=rows).map(|k| (1e6 / f64::from(k).powf(s)).max(1.0) as u64).collect();
    let total: u64 = weights.iter().sum();
    let mut draw = rng.gen_range(0..total);
    for (k, w) in weights.iter().enumerate() {
        if draw < *w {
            return k as u32 + 1;
        }
        draw -= w;
    }
    rows
}

/// First of the two columns client `k` owns (value column; the formula
/// column is the next one). Columns 1..=3 are shared setup state.
pub fn client_value_col(k: usize) -> u32 {
    4 + 2 * k as u32
}

/// Generates the script deterministically from its parameters.
pub fn gen_service_script(p: &ServiceScriptParams) -> ServiceScript {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let sheet = "Main".to_string();

    // Setup: the shared sheet. Column A = data, column B = sliding
    // windows, column C = cumulative totals (the TACO patterns, so the
    // dependents probes traverse a compressed graph).
    let mut setup = vec![EditRecord::AddSheet { name: sheet.clone() }];
    for row in 1..=p.rows {
        setup.push(EditRecord::SetValue {
            sheet: 0,
            cell: Cell::new(1, row),
            value: Value::Number(rng.gen_range(-500..500) as f64 / 10.0),
        });
        if row + 2 <= p.rows {
            setup.push(EditRecord::SetFormula {
                sheet: 0,
                cell: Cell::new(2, row),
                src: format!("SUM(A{row}:A{})", row + 2),
            });
        }
        setup.push(EditRecord::SetFormula {
            sheet: 0,
            cell: Cell::new(3, row),
            src: format!("SUM($A$1:A{row})"),
        });
    }

    // Per-client op streams. Writes stay in the client's own columns;
    // formulas read the shared columns and *other* clients' value
    // columns, so interleavings commute but dataflow crosses clients.
    let max_col = client_value_col(p.clients.saturating_sub(1)) + 1;
    let clients = (0..p.clients)
        .map(|k| {
            let vcol = client_value_col(k);
            let fcol = vcol + 1;
            let mut ops = Vec::with_capacity(p.ops_per_client);
            for _ in 0..p.ops_per_client {
                let row = zipf_row(&mut rng, p.rows, p.zipf_s_centi);
                if rng.gen_range(0..1000u32) < p.read_permille {
                    ops.push(match rng.gen_range(0..10u32) {
                        0..=4 => ClientOp::Get { cell: Cell::new(rng.gen_range(1..=max_col), row) },
                        5..=6 => ClientOp::GetRange {
                            range: Range::from_coords(1, row, max_col, (row + 4).min(p.rows)),
                        },
                        7 => ClientOp::Dependents { range: Range::cell(Cell::new(1, row)) },
                        8 => ClientOp::Precedents { range: Range::cell(Cell::new(3, row)) },
                        _ => ClientOp::DirtyCount,
                    });
                } else {
                    ops.push(match rng.gen_range(0..10u32) {
                        0..=5 => ClientOp::SetValue {
                            cell: Cell::new(vcol, row),
                            value: rng.gen_range(-5000..5000) as f64 / 7.0,
                        },
                        6..=7 => {
                            // Reference the shared data, own value column,
                            // and a peer's value column.
                            let peer = client_value_col(rng.gen_range(0..p.clients));
                            ClientOp::SetFormula {
                                cell: Cell::new(fcol, row),
                                src: format!(
                                    "SUM($A$1:A{row})+{vc}{row}+{pc}{prow}",
                                    vc = col_to_letters(vcol),
                                    pc = col_to_letters(peer),
                                    prow = zipf_row(&mut rng, p.rows, p.zipf_s_centi),
                                ),
                            }
                        }
                        8 => ClientOp::ClearRange {
                            range: Range::from_coords(vcol, row, fcol, (row + 1).min(p.rows)),
                        },
                        _ => ClientOp::Recalc,
                    });
                }
            }
            ops
        })
        .collect();

    ServiceScript { name: p.name, sheet, setup, clients }
}

/// A service-shaped *persistent* build script: the WAL-backed crash test
/// reuses the persistence workload's richer multi-sheet mix.
pub fn persistent_build_script(seed: u64) -> Vec<EditRecord> {
    let p = PersistParams { seed, ..crate::persistence::persist_enron_like() };
    let w = gen_persist_workload(&p);
    w.build
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn scripts_are_deterministic() {
        let a = gen_service_script(&mixed());
        let b = gen_service_script(&mixed());
        assert_eq!(a.setup, b.setup);
        assert_eq!(a.clients, b.clients);
        let c = gen_service_script(&ServiceScriptParams { seed: 9, ..mixed() });
        assert_ne!(a.clients, c.clients);
    }

    #[test]
    fn writes_stay_in_own_columns() {
        for p in [reader_heavy(), writer_heavy(), mixed()] {
            let script = gen_service_script(&p);
            for (k, ops) in script.clients.iter().enumerate() {
                let vcol = client_value_col(k);
                for op in ops {
                    let cols: Vec<u32> = match op {
                        ClientOp::SetValue { cell, .. } => vec![cell.col],
                        ClientOp::SetFormula { cell, .. } => vec![cell.col],
                        ClientOp::ClearRange { range } => {
                            (range.head().col..=range.tail().col).collect()
                        }
                        _ => vec![],
                    };
                    for col in cols {
                        assert!(
                            col == vcol || col == vcol + 1,
                            "client {k} writes column {col}, owns {vcol}/{}",
                            vcol + 1
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn presets_match_their_read_mix() {
        for (p, lo, hi) in
            [(reader_heavy(), 900, 1000), (writer_heavy(), 150, 350), (mixed(), 600, 800)]
        {
            let script = gen_service_script(&p);
            let (mut reads, mut total) = (0u32, 0u32);
            for ops in &script.clients {
                for op in ops {
                    total += 1;
                    if !op.is_write() {
                        reads += 1;
                    }
                }
            }
            let permille = reads * 1000 / total;
            assert!(
                (lo..hi).contains(&permille),
                "{}: observed {permille}‰ reads, expected in {lo}..{hi}",
                p.name
            );
        }
    }

    #[test]
    fn zipf_rows_skew_toward_the_head() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut head = 0u32;
        let mut seen = HashSet::new();
        for _ in 0..2000 {
            let row = zipf_row(&mut rng, 64, 110);
            assert!((1..=64).contains(&row));
            seen.insert(row);
            if row <= 8 {
                head += 1;
            }
        }
        // With s=1.1 over 64 rows, the first 8 rows carry well over a
        // third of the mass; uniform would give 12.5%.
        assert!(head > 2000 / 3, "zipf head mass too small: {head}/2000");
        assert!(seen.len() > 20, "tail must still be sampled: {} distinct rows", seen.len());
    }

    #[test]
    fn serial_write_script_applies_cleanly() {
        use taco_engine::{RecalcMode, Workbook};
        let script = gen_service_script(&writer_heavy());
        let mut wb = Workbook::with_taco();
        for rec in script.setup.iter().chain(&script.serial_writes()) {
            wb.apply_edit(rec).expect("script record applies");
        }
        wb.recalculate(RecalcMode::Serial);
        assert_eq!(wb.dirty_count(), 0);
    }
}
