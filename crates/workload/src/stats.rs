//! Per-sheet statistics for Fig. 1: maximum number of dependents of any
//! single cell, and the longest dependency path.

use crate::generator::SyntheticSheet;
use taco_core::{Config, FormulaGraph};
use taco_grid::Range;

/// Fig. 1 metrics for one sheet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SheetStats {
    /// Total dependencies (`|E'|`).
    pub dependencies: u64,
    /// Maximum number of dependent cells over the probed hot cells.
    pub max_dependents: u64,
    /// The hot-cell index achieving the maximum (into `sheet.hot_cells`).
    pub max_dependents_cell: usize,
    /// Longest dependency path (edges), as constructed by the generator.
    pub longest_path: u32,
}

/// Measures a sheet by building a TACO graph (compression does not change
/// answers, only speed) and probing the generator's hot cells.
pub fn measure(sheet: &SyntheticSheet) -> SheetStats {
    let g = FormulaGraph::build(Config::taco_full(), sheet.deps.iter().copied());
    measure_on(sheet, &g)
}

/// Measures using an already-built graph.
pub fn measure_on(sheet: &SyntheticSheet, g: &FormulaGraph) -> SheetStats {
    let mut max_dependents = 0u64;
    let mut max_cell = 0usize;
    for (i, &cell) in sheet.hot_cells.iter().enumerate() {
        let found = g.find_dependents(Range::cell(cell));
        let n: u64 = found.iter().map(Range::area).sum();
        if n > max_dependents {
            max_dependents = n;
            max_cell = i;
        }
    }
    SheetStats {
        dependencies: sheet.deps.len() as u64,
        max_dependents,
        max_dependents_cell: max_cell,
        longest_path: sheet.longest_path_len,
    }
}

/// Buckets a metric into the Fig. 1 histogram edges:
/// `(0,100] (100,1e3] (1e3,1e4] (1e4,∞)`. Returns the bucket index 0–3.
pub fn fig1_bucket(v: u64) -> usize {
    match v {
        0..=100 => 0,
        101..=1_000 => 1,
        1_001..=10_000 => 2,
        _ => 3,
    }
}

/// Builds the Fig. 1 probability distribution over the four buckets.
pub fn fig1_buckets(values: impl Iterator<Item = u64>) -> [f64; 4] {
    let mut counts = [0usize; 4];
    let mut total = 0usize;
    for v in values {
        counts[fig1_bucket(v)] += 1;
        total += 1;
    }
    if total == 0 {
        return [0.0; 4];
    }
    counts.map(|c| c as f64 / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{gen_sheet, SheetParams};

    #[test]
    fn buckets() {
        assert_eq!(fig1_bucket(0), 0);
        assert_eq!(fig1_bucket(100), 0);
        assert_eq!(fig1_bucket(101), 1);
        assert_eq!(fig1_bucket(1_000), 1);
        assert_eq!(fig1_bucket(10_000), 2);
        assert_eq!(fig1_bucket(10_001), 3);
        let dist = fig1_buckets([50, 150, 5_000, 50_000, 70].into_iter());
        assert_eq!(dist, [0.4, 0.2, 0.2, 0.2]);
    }

    #[test]
    fn measure_finds_large_fanouts() {
        let p = SheetParams { target_deps: 8_000, ..Default::default() };
        let sheet = gen_sheet("s", 11, &p);
        let stats = measure(&sheet);
        assert_eq!(stats.dependencies, sheet.deps.len() as u64);
        // A sheet this size contains FF lookups or chains with large
        // dependent fan-outs.
        assert!(stats.max_dependents > 100, "got {}", stats.max_dependents);
        assert!(stats.longest_path > 0);
    }
}
