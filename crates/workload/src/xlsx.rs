//! Loading real `.xlsx` files into dependency lists via `calamine` — the
//! Rust counterpart of the Apache POI pipeline the paper's prototype uses.
//!
//! Defined names and functions our grammar does not know are skipped
//! (counted in [`LoadReport`]), matching the paper's practice of skipping
//! erroneous files/features. Cross-sheet references (`Sheet2!A1`) now
//! *parse*; they are counted separately and excluded from the per-sheet
//! dependency stream (each sheet's formula graph is per-sheet — routing
//! qualified references is the workbook layer's job).

use calamine::{open_workbook_auto, Reader};
use std::path::Path;
use taco_core::Dependency;
use taco_formula::Formula;
use taco_grid::Cell;

/// Outcome of loading one workbook.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Dependencies extracted across all worksheets.
    pub deps: Vec<Dependency>,
    /// Formula cells parsed successfully.
    pub formulas_parsed: u64,
    /// Formula cells skipped (unsupported syntax).
    pub formulas_skipped: u64,
    /// Sheet-qualified references seen and excluded from `deps`.
    pub cross_sheet_refs: u64,
}

/// Loads every worksheet's formulae from an `.xlsx`/`.xls` file.
pub fn load_workbook(path: &Path) -> Result<LoadReport, calamine::Error> {
    let mut wb = open_workbook_auto(path)?;
    let mut report = LoadReport::default();
    let names: Vec<String> = wb.sheet_names().to_vec();
    for name in names {
        if let Ok(fr) = wb.worksheet_formula(&name) {
            let (row0, col0) = fr.start().unwrap_or((0, 0));
            for (r, row) in fr.rows().enumerate() {
                for (c, f) in row.iter().enumerate() {
                    if f.is_empty() {
                        continue;
                    }
                    let cell = Cell::new(col0 + c as u32 + 1, row0 + r as u32 + 1);
                    match Formula::parse(f) {
                        Ok(parsed) => {
                            report.formulas_parsed += 1;
                            for q in &parsed.refs {
                                // A self-qualified reference (`Sheet1!A1`
                                // on Sheet1 itself) is local, matching the
                                // engine's semantics.
                                if q.sheet.as_ref().is_none_or(|s| s.matches(&name)) {
                                    report.deps.push(Dependency::from_ref(&q.rref, cell));
                                } else {
                                    report.cross_sheet_refs += 1;
                                }
                            }
                        }
                        Err(_) => report.formulas_skipped += 1,
                    }
                }
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_file_errors() {
        assert!(load_workbook(Path::new("/nonexistent/file.xlsx")).is_err());
    }
}
