//! End-to-end request tracing over live TCP: a client pins one sticky
//! trace context on its connection, drives a mixed workload (logged
//! writes, a full recalc, a deliberately wide demand recalc), then
//! fetches the server's span rings with `TraceDump` and reassembles the
//! tree. The acceptance bar: the demand request's root span is found by
//! the client's trace id, its descendants include at least one engine
//! recalc-level span and at least one WAL append/fsync span, direct
//! children never out-run their parent's duration, and the Chrome
//! `trace_event` export is structurally valid JSON carrying every span.

use std::sync::Arc;
use taco_engine::{PersistOptions, PersistentWorkbook, RecalcMode, Workbook};
use taco_formula::Value;
use taco_grid::{Cell, Range};
use taco_obs::{ObsOptions, SlowSpan, SpanCat, TraceContext, TraceDump, TracerOptions};
use taco_service::{Registry, Server, ServerOptions, ServiceError, ServiceOptions, TcpClient};

fn n(v: f64) -> Value {
    Value::Number(v)
}

fn c(s: &str) -> Cell {
    Cell::parse_a1(s).unwrap()
}

/// The client's pinned context: a made-up but non-zero trace id, and a
/// span id every server-side request root will carry as its parent.
const CLIENT_SPAN: u64 = 42;
fn client_ctx() -> TraceContext {
    TraceContext {
        trace_hi: 0xC11E_1700,
        trace_lo: 0x07AC_ED1D,
        span_id: CLIENT_SPAN,
        parent_id: 0,
    }
}

/// A workbook with a long serial chain plus a summary sheet, so a
/// viewport demand recalc expands a large closure across many levels.
/// When `recalced` is false the whole chain is left dirty — a service
/// workbook registered that way makes the first viewport request expand
/// a genuinely large demand closure (steady-state writes recalculate
/// eagerly, so their closures are empty).
fn chained_workbook(rows: u32, recalced: bool) -> Workbook {
    let mut wb = Workbook::with_taco();
    let data = wb.add_sheet("Data").unwrap();
    let summary = wb.add_sheet("Summary").unwrap();
    wb.set_value(data, c("A1"), n(1.0));
    for row in 2..=rows {
        wb.set_formula(data, Cell::new(1, row), &format!("=A{}+1", row - 1)).unwrap();
    }
    wb.set_formula(summary, c("A1"), &format!("=Data!A{rows}*2")).unwrap();
    if recalced {
        wb.recalculate(RecalcMode::Serial);
    }
    wb
}

/// Spans of `dump` (both rings) that belong to the client's trace.
fn in_trace(dump: &TraceDump) -> Vec<&SlowSpan> {
    let ctx = client_ctx();
    dump.recent
        .iter()
        .chain(dump.slow.iter())
        .filter(|s| s.trace_hi == ctx.trace_hi && s.trace_lo == ctx.trace_lo)
        .collect()
}

/// Every descendant of `root` among `spans` (same trace, transitive
/// parent pointers).
fn descendants<'a>(spans: &[&'a SlowSpan], root: &SlowSpan) -> Vec<&'a SlowSpan> {
    let mut out: Vec<&SlowSpan> = Vec::new();
    let mut frontier = vec![root.span_id];
    while let Some(pid) = frontier.pop() {
        for s in spans {
            if s.parent_id == pid && !out.iter().any(|o| o.span_id == s.span_id) {
                out.push(s);
                frontier.push(s.span_id);
            }
        }
    }
    out
}

#[test]
fn traced_requests_assemble_cross_layer_span_trees() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("taco_trace_wire_{}.taco", std::process::id()));
    let wal = taco_engine::wal_path(&path);
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&wal).ok();

    // The chain is registered dirty: the first demand request must
    // expand (and evaluate) the whole 400-cell closure.
    let pw = PersistentWorkbook::create(
        &path,
        chained_workbook(400, false),
        PersistOptions { compact_after_records: 0, sync_every_records: 1 },
    )
    .unwrap();
    // Cell-parallel recalc so engine-level spans appear; a generous span
    // ring so the whole workload's tree survives until the dump.
    let registry = Arc::new(Registry::new(ServiceOptions {
        recalc_mode: RecalcMode::CellParallel { threads: 2 },
        obs_options: ObsOptions {
            tracer: TracerOptions { span_capacity: 4096, ..TracerOptions::default() },
        },
        ..ServiceOptions::default()
    }));
    registry.add_persistent("books", pw, None).unwrap();
    let server =
        Server::start(Arc::clone(&registry), "127.0.0.1:0", ServerOptions::default()).unwrap();

    let mut client = TcpClient::connect(server.local_addr()).unwrap();
    client.set_trace(client_ctx());
    client.open("books", None, None).unwrap();

    // The deliberately wide request first: a viewport demand recalc
    // whose closure covers the whole still-dirty 400-cell chain. Then a
    // mixed tail of logged writes (WAL appends + fsyncs under their
    // write batches).
    let evaluated = client.recalc_range("Summary", Range::parse_a1("A1:A1").unwrap()).unwrap();
    assert!(evaluated >= 400, "demand closure covers the chain: {evaluated}");
    client.set_value("Data", c("A1"), n(5.0)).unwrap();
    client.set_formula("Data", c("B1"), "=SUM(A1:A400)").unwrap();
    assert_eq!(client.get("Data", c("A400")), Ok(n(404.0)));

    let dump = client.trace_dump().unwrap();
    let spans = in_trace(&dump);
    assert!(!spans.is_empty(), "the client trace id reached the server rings");

    // The wide request's root: a Request-cat span parented directly on
    // the client's pinned span id.
    let root = spans
        .iter()
        .find(|s| {
            s.cat == SpanCat::Request && s.parent_id == CLIENT_SPAN && s.name == "recalc_range"
        })
        .unwrap_or_else(|| panic!("no recalc_range root: {spans:?}"));

    // Its subtree reaches the engine layer: at least one recalc-level
    // span (workbook sheet level or cell level).
    let tree = descendants(&spans, root);
    assert!(
        tree.iter().any(|s| matches!(s.cat, SpanCat::SheetLevel | SpanCat::CellLevel)),
        "no engine level span under recalc_range: {tree:?}"
    );
    assert!(
        tree.iter().any(|s| s.name == "workbook.demand"),
        "no demand span under recalc_range: {tree:?}"
    );

    // The same trace reaches the WAL layer: the logged writes rode a
    // batch whose appends/fsyncs are descendants of some request root.
    let wal_spans: Vec<_> =
        spans.iter().filter(|s| matches!(s.cat, SpanCat::WalAppend | SpanCat::WalFsync)).collect();
    assert!(!wal_spans.is_empty(), "no WAL spans in the client trace: {spans:?}");

    // Containment: no direct child of any span in the trace runs longer
    // than its parent (single-parent, same clock — the sum of children
    // is bounded by the parent's wall time).
    for parent in &spans {
        let kids: Vec<_> = spans.iter().filter(|s| s.parent_id == parent.span_id).collect();
        let kid_sum: u64 = kids.iter().map(|s| s.dur_ns).sum();
        assert!(
            kid_sum <= parent.dur_ns,
            "children of {} out-run it: {kid_sum} > {} ({kids:?})",
            parent.name,
            parent.dur_ns,
        );
    }

    // Chrome export: structurally sound JSON, one complete event per
    // span in the dump.
    let json = dump.to_chrome_json();
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
    assert_eq!(json.matches("\"ph\":\"X\"").count(), dump.span_count());
    assert!(json.contains("\"traceEvents\":["));

    server.shutdown();
    registry.shutdown();
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&wal).ok();
}

#[test]
fn untraced_and_disabled_paths_still_answer() {
    // Without a sticky context requests still trace (fresh roots), and
    // TraceDump against a no-obs registry is a typed refusal.
    let registry = Arc::new(Registry::new(ServiceOptions::default()));
    registry.add_workbook("plain", chained_workbook(10, true), None).unwrap();
    let server =
        Server::start(Arc::clone(&registry), "127.0.0.1:0", ServerOptions::default()).unwrap();
    let mut client = TcpClient::connect(server.local_addr()).unwrap();
    client.open("plain", None, None).unwrap();
    client.recalc().unwrap();
    let dump = client.trace_dump().unwrap();
    assert!(
        dump.recent.iter().any(|s| s.cat == SpanCat::Request && s.parent_id == 0),
        "untraced requests get fresh root spans: {dump:?}"
    );
    server.shutdown();
    registry.shutdown();

    let no_obs = Arc::new(Registry::new(ServiceOptions { obs: false, ..Default::default() }));
    no_obs.add_workbook("plain", chained_workbook(10, true), None).unwrap();
    let server =
        Server::start(Arc::clone(&no_obs), "127.0.0.1:0", ServerOptions::default()).unwrap();
    let mut client = TcpClient::connect(server.local_addr()).unwrap();
    client.set_trace(client_ctx());
    client.open("plain", None, None).unwrap();
    assert!(matches!(client.trace_dump(), Err(ServiceError::BadRequest(_))));
    server.shutdown();
    no_obs.shutdown();
}
