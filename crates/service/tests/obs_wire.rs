//! Observability end to end over TCP: a live client drives a persistent
//! workbook through a mixed workload, fetches a [`MetricsSnapshot`] with
//! the `Metrics` request, and finds all three instrumented layers in it —
//! engine recalc histograms, WAL counters, and per-operation request
//! percentiles — in both Prometheus text and JSON renderings. Plus the
//! refusal paths: `Busy`, `AuthFailed`, and `OutOfScope` each provoked
//! over the wire and visible in `Stats` and the hub counters.
//!
//! [`MetricsSnapshot`]: taco_obs::MetricsSnapshot

use std::sync::Arc;
use taco_engine::{PersistOptions, PersistentWorkbook, RecalcMode, Workbook};
use taco_formula::Value;
use taco_grid::{Cell, Range};
use taco_obs::MetricsSnapshot;
use taco_service::{Registry, Server, ServerOptions, ServiceError, ServiceOptions, TcpClient};

fn n(v: f64) -> Value {
    Value::Number(v)
}

fn c(s: &str) -> Cell {
    Cell::parse_a1(s).unwrap()
}

fn demo_workbook() -> Workbook {
    let mut wb = Workbook::with_taco();
    let data = wb.add_sheet("Data").unwrap();
    let summary = wb.add_sheet("Summary").unwrap();
    for row in 1..=8u32 {
        wb.set_value(data, Cell::new(1, row), n(f64::from(row)));
    }
    wb.set_formula(data, c("B1"), "=SUM(A1:A8)").unwrap();
    wb.set_formula(summary, c("A1"), "=Data!B1*2").unwrap();
    wb.recalculate(RecalcMode::Serial);
    wb
}

fn counter(snap: &MetricsSnapshot, name: &str) -> u64 {
    snap.counters.iter().filter(|m| m.name == name).map(|m| m.value).sum()
}

fn hist_count(snap: &MetricsSnapshot, name: &str, labels: &str) -> u64 {
    snap.histograms.iter().filter(|h| h.name == name && h.labels == labels).map(|h| h.count).sum()
}

#[test]
fn metrics_over_the_wire_capture_all_three_layers() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("taco_obs_wire_{}.taco", std::process::id()));
    let wal = taco_engine::wal_path(&path);
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&wal).ok();

    let pw = PersistentWorkbook::create(
        &path,
        demo_workbook(),
        PersistOptions { compact_after_records: 0, sync_every_records: 1 },
    )
    .unwrap();
    let registry = Arc::new(Registry::new(ServiceOptions::default()));
    registry.add_persistent("books", pw, None).unwrap();
    let server =
        Server::start(Arc::clone(&registry), "127.0.0.1:0", ServerOptions::default()).unwrap();

    let mut client = TcpClient::connect(server.local_addr()).unwrap();
    client.open("books", None, None).unwrap();

    // A mixed workload: logged edits (WAL appends + fsyncs), full and
    // demand recalcs (engine histograms), snapshot reads and one
    // compaction.
    for i in 0..6u32 {
        client.set_value("Data", Cell::new(2, i + 1), n(f64::from(i) * 1.5)).unwrap();
    }
    client.set_formula("Data", c("C1"), "=SUM(B1:B6)").unwrap();
    client.recalc().unwrap();
    client.get_range_fresh("Data", Range::parse_a1("A1:C4").unwrap()).unwrap();
    client.get("Summary", c("A1")).unwrap();
    client.save().unwrap();

    let snap = client.metrics().unwrap();

    // Engine layer: recalcs ran and were timed under the service's mode.
    assert!(counter(&snap, "taco_recalcs_total") > 0, "{snap:?}");
    let recalc_serial = snap
        .histograms
        .iter()
        .find(|h| h.name == "taco_recalc_ns" && h.labels == "mode=\"serial\"")
        .expect("serial recalc histogram");
    assert!(recalc_serial.count > 0);
    assert!(recalc_serial.p99 >= recalc_serial.p50);
    assert!(hist_count(&snap, "taco_demand_closure_cells", "") > 0, "demand recalc recorded");
    // Graph-shape gauges carry the workbook label and a live edge count.
    let edges = snap
        .gauges
        .iter()
        .find(|g| g.name == "taco_graph_edges" && g.labels == "book=\"books\"")
        .expect("graph edge gauge");
    assert!(edges.value > 0, "{edges:?}");

    // Store layer: every logged edit appended and fsynced; the explicit
    // Save compacted.
    assert!(counter(&snap, "taco_wal_records_total") >= 7, "{snap:?}");
    assert!(counter(&snap, "taco_wal_fsyncs_total") > 0);
    assert!(counter(&snap, "taco_wal_bytes_total") > 0);
    assert_eq!(counter(&snap, "taco_wal_compactions_total"), 1);

    // Service layer: per-operation latency percentiles for the tags the
    // workload hit, and the session gauge.
    for op in ["op=\"set_value\"", "op=\"recalc\"", "op=\"get\"", "op=\"save\""] {
        let h = snap
            .histograms
            .iter()
            .find(|h| h.name == "taco_request_ns" && h.labels == op)
            .unwrap_or_else(|| panic!("request histogram {op}"));
        assert!(h.count > 0, "{op}: {h:?}");
        assert!(h.p50 > 0 && h.p90 >= h.p50 && h.p99 >= h.p90, "{op}: {h:?}");
    }
    let sessions = snap.gauges.iter().find(|g| g.name == "taco_sessions").expect("session gauge");
    assert_eq!(sessions.value, 1);

    // Both renderings carry the same series.
    let text = snap.to_prometheus();
    assert!(text.contains("taco_recalc_ns_bucket{mode=\"serial\""), "{text}");
    assert!(text.contains("taco_wal_records_total"), "{text}");
    assert!(text.contains("taco_request_ns"), "{text}");
    let json = snap.to_json();
    assert!(json.contains("\"taco_recalcs_total\"") || json.contains("taco_recalcs_total"));
    assert!(json.contains("taco_wal_fsyncs_total"));

    server.shutdown();
    registry.shutdown();
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&wal).ok();
}

#[test]
fn refusals_are_counted_busy_auth_and_scope() {
    let registry = Arc::new(Registry::new(ServiceOptions::default()));
    registry.add_workbook("sales", demo_workbook(), Some("hunter2")).unwrap();
    let server = Server::start(
        Arc::clone(&registry),
        "127.0.0.1:0",
        ServerOptions { max_connections: 2, ..ServerOptions::default() },
    )
    .unwrap();

    let mut main = TcpClient::connect(server.local_addr()).unwrap();
    main.open("sales", Some("hunter2"), Some(&["Data"])).unwrap();

    // AuthFailed: a second connection presents the wrong token.
    let mut second = TcpClient::connect(server.local_addr()).unwrap();
    assert!(matches!(second.open("sales", Some("wrong"), None), Err(ServiceError::AuthFailed)));

    // Busy: both connection slots are held; a third handshakes, is told
    // Busy in a well-formed frame, and is closed.
    let mut third = TcpClient::connect(server.local_addr()).unwrap();
    let err = third.open("sales", Some("hunter2"), None).unwrap_err();
    assert!(
        matches!(err, ServiceError::Busy | ServiceError::Io(_) | ServiceError::Wire(_)),
        "{err:?}"
    );

    // OutOfScope: the scoped session reaches for a foreign sheet.
    drop(second);
    let mut opened = main;
    assert!(matches!(opened.get("Summary", c("A1")), Err(ServiceError::OutOfScope(_))));

    // All three land in Stats (the Busy count is written by the acceptor
    // thread; poll briefly for it).
    let stats = {
        let mut tries = 0;
        loop {
            let s = opened.stats().unwrap();
            if s.busy_rejected >= 1 || tries > 100 {
                break s;
            }
            tries += 1;
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
    };
    assert_eq!(stats.auth_failures, 1, "{stats:?}");
    assert_eq!(stats.busy_rejected, 1, "{stats:?}");
    assert!(stats.scope_denials >= 1, "{stats:?}");

    // And in the hub's counters, over the same wire.
    let snap = opened.metrics().unwrap();
    assert_eq!(counter(&snap, "taco_auth_failures_total"), 1);
    assert_eq!(counter(&snap, "taco_busy_rejected_total"), 1);
    assert!(counter(&snap, "taco_scope_denials_total") >= 1);

    server.shutdown();
    registry.shutdown();
}

#[test]
fn metrics_disabled_registry_answers_bad_request() {
    let registry = Arc::new(Registry::new(ServiceOptions { obs: false, ..Default::default() }));
    registry.add_workbook("plain", demo_workbook(), None).unwrap();
    let server =
        Server::start(Arc::clone(&registry), "127.0.0.1:0", ServerOptions::default()).unwrap();
    let mut client = TcpClient::connect(server.local_addr()).unwrap();
    client.open("plain", None, None).unwrap();
    // Everything else works; Metrics is a typed refusal, not a hang.
    assert_eq!(client.get("Data", c("B1")).unwrap(), n(36.0));
    assert!(matches!(client.metrics(), Err(ServiceError::BadRequest(_))));
    assert!(registry.obs().is_none());
    server.shutdown();
    registry.shutdown();
}
