//! Wire-protocol robustness (mirrors `crates/store/tests/corruption.rs`
//! for the service's framed transport): exhaustive frame truncations,
//! exhaustive per-byte bit flips, oversized declared lengths bounded
//! before allocation, bogus handshakes, and a mid-stream disconnect. The
//! server must answer with typed errors where the stream is still in
//! sync, close the connection where it is not, and in **every** case
//! keep serving subsequent well-behaved clients — no panics, no wedged
//! threads, no leaked sessions.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use taco_engine::{RecalcMode, Workbook};
use taco_formula::Value;
use taco_grid::Cell;
use taco_obs::TraceContext;
use taco_service::{
    Registry, Request, Response, Server, ServerOptions, ServiceError, ServiceOptions, TcpClient,
};
use taco_store::codec::write_uvarint;
use taco_store::{read_frame, write_frame};

fn demo_registry() -> Arc<Registry> {
    let mut wb = Workbook::with_taco();
    let data = wb.add_sheet("Data").unwrap();
    for row in 1..=8u32 {
        wb.set_value(data, Cell::new(1, row), Value::Number(f64::from(row)));
    }
    wb.set_formula(data, Cell::new(2, 1), "=SUM(A1:A8)").unwrap();
    wb.recalculate(RecalcMode::Serial);
    let reg = Arc::new(Registry::new(ServiceOptions::default()));
    reg.add_workbook("book", wb, None).unwrap();
    reg
}

fn start_server(registry: &Arc<Registry>, opts: ServerOptions) -> Server {
    Server::start(Arc::clone(registry), "127.0.0.1:0", opts).unwrap()
}

/// A raw handshaken socket with a read timeout (so a misbehaving server
/// could never hang the test suite).
fn raw_conn(server: &Server) -> TcpStream {
    let mut s = TcpStream::connect(server.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut hello = [0u8; 6];
    hello[..4].copy_from_slice(b"TSRV");
    hello[4..].copy_from_slice(&taco_service::server::WIRE_VERSION.to_le_bytes());
    s.write_all(&hello).unwrap();
    let mut echo = [0u8; 6];
    s.read_exact(&mut echo).unwrap();
    assert_eq!(echo, hello);
    s
}

/// Proves the server still serves: a fresh full client session succeeds.
fn assert_still_serving(server: &Server) {
    let mut client = TcpClient::connect(server.local_addr()).expect("connect after abuse");
    client.open("book", None, None).expect("open after abuse");
    let v = client.get("Data", Cell::new(2, 1)).expect("read after abuse");
    assert_eq!(v, Value::Number(36.0));
    client.close().expect("close after abuse");
}

fn open_frame() -> Vec<u8> {
    let mut frame = Vec::new();
    write_frame(
        &mut frame,
        &Request::Open { workbook: "book".into(), auth: None, scope: None }.encode(),
    )
    .unwrap();
    frame
}

/// The Open request inside a trace-context wrapper (tag 22): the frame
/// shape every traced client emits.
fn traced_open_frame() -> Vec<u8> {
    let ctx = TraceContext { trace_hi: 0xFEED, trace_lo: 0xBEEF, span_id: 7, parent_id: 0 };
    let mut frame = Vec::new();
    write_frame(
        &mut frame,
        &Request::Open { workbook: "book".into(), auth: None, scope: None }.encode_traced(ctx),
    )
    .unwrap();
    frame
}

/// A TraceDump request frame (tag 21) with a plausible-looking token.
fn trace_dump_frame() -> Vec<u8> {
    let mut frame = Vec::new();
    write_frame(&mut frame, &Request::TraceDump { token: 0x1234_5678 }.encode()).unwrap();
    frame
}

#[test]
fn every_frame_truncation_leaves_the_server_serving() {
    let registry = demo_registry();
    let server = start_server(&registry, ServerOptions::default());
    let frame = open_frame();
    for cut in 0..frame.len() {
        let mut s = raw_conn(&server);
        s.write_all(&frame[..cut]).unwrap();
        drop(s); // mid-stream disconnect at every possible byte boundary
    }
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn every_bit_flip_is_answered_or_dropped_never_wedged() {
    let registry = demo_registry();
    let server = start_server(&registry, ServerOptions::default());
    let frame = open_frame();
    for i in 0..frame.len() {
        for bit in 0..8 {
            let mut bad = frame.clone();
            bad[i] ^= 1 << bit;
            let mut s = raw_conn(&server);
            // The flip may corrupt the length varint (server waits for
            // more bytes), the CRC, or the payload. Close our write side
            // so a waiting server sees EOF instead of hanging.
            let _ = s.write_all(&bad);
            let _ = s.shutdown(std::net::Shutdown::Write);
            // The server either answers (an error frame or, when the
            // flip left the frame valid, an Opened) or closes. Drain
            // whatever comes; the only failure mode is a hang, which the
            // read timeout converts into an error we tolerate.
            let mut sink = Vec::new();
            let _ = s.read_to_end(&mut sink);
        }
    }
    assert_still_serving(&server);
    // Sessions from flips that *happened* to parse as a valid Open are
    // closed with their connections: nothing leaks once all are gone.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while registry.session_count() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(registry.session_count(), 0, "disconnects must close their sessions");
    server.shutdown();
}

#[test]
fn oversized_declared_length_is_rejected_before_allocation() {
    let registry = demo_registry();
    let server = start_server(&registry, ServerOptions::default());
    let mut s = raw_conn(&server);
    // Declare a 2^40-byte payload; send nothing else.
    let mut frame = Vec::new();
    write_uvarint(&mut frame, 1u64 << 40).unwrap();
    frame.extend_from_slice(&[0u8; 16]);
    s.write_all(&frame).unwrap();
    // The server answers with a typed wire error frame, then closes.
    let payload = read_frame(&mut s, 1 << 20).expect("error frame");
    let resp = Response::decode(&payload).expect("decodable response");
    assert!(
        matches!(resp, Response::Err(ServiceError::BadRequest(_) | ServiceError::Wire(_))),
        "oversized length must be a typed error, got {resp:?}"
    );
    let mut rest = Vec::new();
    let _ = s.read_to_end(&mut rest);
    assert!(rest.is_empty(), "connection must be closed after a framing violation");
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn traced_wrapper_and_trace_dump_survive_truncation_and_bit_flips() {
    // The new wire surfaces get the same exhaustive abuse as the base
    // protocol: every truncation point and every single-bit flip of a
    // trace-context-wrapped Open and of a TraceDump request, and the
    // server must still serve a clean client afterwards.
    let registry = demo_registry();
    let server = start_server(&registry, ServerOptions::default());
    for frame in [traced_open_frame(), trace_dump_frame()] {
        for cut in 0..frame.len() {
            let mut s = raw_conn(&server);
            s.write_all(&frame[..cut]).unwrap();
            drop(s);
        }
        for i in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[i] ^= 1 << bit;
                let mut s = raw_conn(&server);
                let _ = s.write_all(&bad);
                let _ = s.shutdown(std::net::Shutdown::Write);
                let mut sink = Vec::new();
                let _ = s.read_to_end(&mut sink);
            }
        }
    }
    assert_still_serving(&server);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while registry.session_count() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(registry.session_count(), 0, "abuse must not leak sessions");
    server.shutdown();
}

#[test]
fn degenerate_trace_wrappers_are_typed_errors_on_a_live_stream() {
    // A zero trace id and a nested wrapper are both in-sync framing
    // violations: the server answers a typed error and the same
    // connection keeps working.
    let registry = demo_registry();
    let server = start_server(&registry, ServerOptions::default());
    let mut s = raw_conn(&server);

    let inner = Request::Open { workbook: "book".into(), auth: None, scope: None }.encode();
    // Tag 22 with an all-zero trace id.
    let mut zero_id = vec![22u8];
    zero_id.extend_from_slice(&[0u8; 24]);
    zero_id.extend_from_slice(&inner);
    // Tag 22 wrapping another tag 22.
    let ctx = TraceContext { trace_hi: 1, trace_lo: 2, span_id: 3, parent_id: 0 };
    let once =
        Request::Open { workbook: "book".into(), auth: None, scope: None }.encode_traced(ctx);
    let mut nested = vec![22u8];
    nested.extend_from_slice(&ctx.trace_hi.to_le_bytes());
    nested.extend_from_slice(&ctx.trace_lo.to_le_bytes());
    nested.extend_from_slice(&ctx.span_id.to_le_bytes());
    nested.extend_from_slice(&once);

    for bad in [zero_id, nested] {
        write_frame(&mut s, &bad).unwrap();
        let resp = Response::decode(&read_frame(&mut s, 1 << 20).unwrap()).unwrap();
        assert!(
            matches!(resp, Response::Err(ServiceError::BadRequest(_) | ServiceError::Wire(_))),
            "degenerate wrapper must be a typed error, got {resp:?}"
        );
    }
    // Same connection, now a real traced request.
    write_frame(
        &mut s,
        &Request::Open { workbook: "book".into(), auth: None, scope: None }.encode_traced(ctx),
    )
    .unwrap();
    let resp = Response::decode(&read_frame(&mut s, 1 << 20).unwrap()).unwrap();
    assert!(matches!(resp, Response::Opened { .. }), "{resp:?}");
    server.shutdown();
}

#[test]
fn http_sidecar_answers_abuse_and_keeps_serving() {
    // The sidecar is plain HTTP: junk requests get 400/404 (or a clean
    // close for non-HTTP bytes), oversized heads are cut off, and the
    // scrape endpoints keep answering afterwards — no panics, ever.
    let obs = taco_obs::Obs::new_default();
    obs.metrics.counter("taco_robust_total").add(3);
    let sidecar = taco_service::HttpSidecar::start("127.0.0.1:0", Arc::clone(&obs)).unwrap();
    let addr = sidecar.addr();

    let roundtrip = |bytes: &[u8]| -> Vec<u8> {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let _ = s.write_all(bytes);
        let _ = s.shutdown(std::net::Shutdown::Write);
        let mut out = Vec::new();
        let _ = s.read_to_end(&mut out);
        out
    };

    let abuses: Vec<Vec<u8>> = vec![
        b"".to_vec(),
        b"\r\n".to_vec(),
        b"GET\r\n\r\n".to_vec(),
        b"POST /metrics HTTP/1.0\r\n\r\n".to_vec(),
        b"GET /metrics SMTP/1.0\r\n\r\n".to_vec(),
        b"GET /../../etc/passwd HTTP/1.0\r\n\r\n".to_vec(),
        vec![0xFFu8; 64],
        vec![b'A'; 64 * 1024], // far past the 8 KB head cap, no newline
        b"GET /metrics HTTP/1.0".to_vec(), // cut off mid-request-line
    ];
    for abuse in &abuses {
        let reply = roundtrip(abuse);
        if !reply.is_empty() {
            let head = String::from_utf8_lossy(&reply);
            assert!(
                head.starts_with("HTTP/1.0 400") || head.starts_with("HTTP/1.0 404"),
                "abuse must be refused with 400/404: {head:.60}"
            );
        }
    }

    // Still scraping after every abuse.
    let ok = roundtrip(b"GET /metrics HTTP/1.0\r\n\r\n");
    let body = String::from_utf8_lossy(&ok);
    assert!(body.starts_with("HTTP/1.0 200 OK"), "sidecar must still serve: {body:.60}");
    assert!(body.contains("taco_robust_total 3"), "metrics body intact: {body}");
    sidecar.shutdown();
}

#[test]
fn valid_frame_with_malformed_request_keeps_the_stream_alive() {
    let registry = demo_registry();
    let server = start_server(&registry, ServerOptions::default());
    let mut s = raw_conn(&server);
    // A well-framed payload that is not a request (unknown op 200): the
    // stream is still in sync, so the server answers and keeps serving
    // *this* connection.
    write_frame(&mut s, &[200u8, 1, 2, 3]).unwrap();
    let resp = Response::decode(&read_frame(&mut s, 1 << 20).unwrap()).unwrap();
    assert!(matches!(resp, Response::Err(ServiceError::BadRequest(_) | ServiceError::Wire(_))));
    // Same connection, now a real request.
    write_frame(
        &mut s,
        &Request::Open { workbook: "book".into(), auth: None, scope: None }.encode(),
    )
    .unwrap();
    let resp = Response::decode(&read_frame(&mut s, 1 << 20).unwrap()).unwrap();
    assert!(matches!(resp, Response::Opened { .. }), "{resp:?}");
    server.shutdown();
}

#[test]
fn bogus_handshake_is_dropped() {
    let registry = demo_registry();
    let server = start_server(&registry, ServerOptions::default());
    let mut s = TcpStream::connect(server.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    let mut sink = Vec::new();
    let _ = s.read_to_end(&mut sink);
    assert!(sink.is_empty(), "a non-protocol peer gets nothing back");
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn mid_stream_disconnect_releases_the_session() {
    let registry = demo_registry();
    let server = start_server(&registry, ServerOptions::default());
    {
        let mut client = TcpClient::connect(server.local_addr()).unwrap();
        client.open("book", None, None).unwrap();
        assert_eq!(registry.session_count(), 1);
        // Send half a frame, then vanish.
        let mut s = raw_conn(&server);
        let frame = open_frame();
        s.write_all(&frame[..frame.len() / 2]).unwrap();
        drop(s);
        drop(client); // vanish without Close
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while registry.session_count() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(registry.session_count(), 0, "dropped connection must close its session");
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn connection_limit_reports_busy_and_recovers() {
    let registry = demo_registry();
    let server =
        start_server(&registry, ServerOptions { max_connections: 1, ..ServerOptions::default() });
    let mut first = TcpClient::connect(server.local_addr()).unwrap();
    first.open("book", None, None).unwrap();
    // Second connection: handshake succeeds, then a typed Busy frame.
    let err = match TcpClient::connect(server.local_addr()) {
        Ok(mut second) => second.open("book", None, None).expect_err("over the limit"),
        Err(e) => e,
    };
    assert!(
        matches!(err, ServiceError::Busy | ServiceError::Io(_) | ServiceError::Wire(_)),
        "expected Busy (or a closed connection), got {err:?}"
    );
    // Releasing the first connection frees the slot.
    first.close().unwrap();
    drop(first);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match TcpClient::connect(server.local_addr()).and_then(|mut c| c.open("book", None, None)) {
            Ok(_) => break,
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("slot never freed: {e}"),
        }
    }
    server.shutdown();
}

#[test]
fn graceful_shutdown_interrupts_blocked_readers() {
    let registry = demo_registry();
    let server = start_server(&registry, ServerOptions::default());
    let addr = server.local_addr();
    // A client parked in a blocking read (no request in flight).
    let parked = TcpStream::connect(addr).unwrap();
    let reader = std::thread::spawn(move || {
        let mut s = parked;
        let mut hello = [0u8; 6];
        hello[..4].copy_from_slice(b"TSRV");
        hello[4..].copy_from_slice(&1u16.to_le_bytes());
        s.write_all(&hello).unwrap();
        let mut echo = [0u8; 6];
        s.read_exact(&mut echo).unwrap();
        // Now just wait for the server to hang up.
        let mut sink = Vec::new();
        let _ = s.read_to_end(&mut sink);
    });
    std::thread::sleep(Duration::from_millis(30));
    server.shutdown(); // must not hang on the parked connection
    reader.join().expect("parked client unblocked");
    // The port no longer accepts the protocol.
    assert!(
        TcpClient::connect(addr).and_then(|mut c| c.open("book", None, None)).is_err(),
        "server must be gone after shutdown"
    );
}
