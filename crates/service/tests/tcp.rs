//! End-to-end TCP integration: sessions, auth, and scoping over the
//! wire; cross-connection visibility of writes; `Save` against a
//! persistent backing store; and the full command set exercised through
//! the framed transport.

use std::sync::Arc;
use taco_core::StructuralOp;
use taco_engine::{EditRecord, PersistOptions, PersistentWorkbook, RecalcMode, SheetId, Workbook};
use taco_formula::{CellError, Value};
use taco_grid::{Cell, Range};
use taco_service::{Registry, Server, ServerOptions, ServiceError, ServiceOptions, TcpClient};

fn n(v: f64) -> Value {
    Value::Number(v)
}

fn c(s: &str) -> Cell {
    Cell::parse_a1(s).unwrap()
}

fn demo_workbook() -> Workbook {
    let mut wb = Workbook::with_taco();
    let data = wb.add_sheet("Data").unwrap();
    let summary = wb.add_sheet("Summary").unwrap();
    for row in 1..=6u32 {
        wb.set_value(data, Cell::new(1, row), n(f64::from(row)));
    }
    wb.set_formula(data, c("B1"), "=SUM(A1:A6)").unwrap();
    wb.set_formula(summary, c("A1"), "=Data!B1*2").unwrap();
    wb.recalculate(RecalcMode::Serial);
    wb
}

fn serve(registry: Arc<Registry>) -> Server {
    Server::start(registry, "127.0.0.1:0", ServerOptions::default()).unwrap()
}

#[test]
fn full_command_set_over_the_wire() {
    let registry = Arc::new(Registry::new(ServiceOptions::default()));
    registry.add_workbook("sales", demo_workbook(), Some("hunter2")).unwrap();
    let server = serve(Arc::clone(&registry));

    let mut client = TcpClient::connect(server.local_addr()).unwrap();
    // Wrong auth fails; right auth opens.
    assert!(matches!(client.open("sales", Some("wrong"), None), Err(ServiceError::AuthFailed)));
    let sheets = client.open("sales", Some("hunter2"), None).unwrap();
    assert_eq!(sheets, vec!["Data".to_string(), "Summary".to_string()]);

    // Reads.
    assert_eq!(client.get("Data", c("B1")).unwrap(), n(21.0));
    assert_eq!(client.get("Summary", c("A1")).unwrap(), n(42.0));
    let cells = client.get_range("Data", Range::parse_a1("A1:A3").unwrap()).unwrap();
    assert_eq!(cells, vec![(c("A1"), n(1.0)), (c("A2"), n(2.0)), (c("A3"), n(3.0))]);

    // Writes recalc before publishing: immediately visible.
    client.set_value("Data", c("A1"), n(100.0)).unwrap();
    assert_eq!(client.get("Data", c("B1")).unwrap(), n(120.0));
    assert_eq!(client.get("Summary", c("A1")).unwrap(), n(240.0));

    // Formula + autofill + clear.
    client.set_formula("Data", c("C1"), "=A1*10").unwrap();
    client.autofill("Data", c("C1"), Range::parse_a1("C2:C6").unwrap()).unwrap();
    assert_eq!(client.get("Data", c("C4")).unwrap(), n(40.0));
    client.clear_range("Data", Range::parse_a1("C1:C6").unwrap()).unwrap();
    assert_eq!(client.get("Data", c("C4")).unwrap(), Value::Empty);

    // Queries hop sheets.
    let deps = client.dependents("Data", Range::parse_a1("A2").unwrap()).unwrap();
    assert!(deps.iter().any(|(s, r)| s == "Summary" && r.contains_cell(c("A1"))), "{deps:?}");
    let precs = client.precedents("Summary", Range::parse_a1("A1").unwrap()).unwrap();
    assert!(precs.iter().any(|(s, _)| s == "Data"), "{precs:?}");

    // Counters.
    assert_eq!(client.dirty_count().unwrap(), 0);
    let evaluated = client.recalc().unwrap();
    assert_eq!(evaluated, 0, "nothing left dirty after published writes");
    let stats = client.stats().unwrap();
    assert_eq!(stats.sheets, 2);
    // set_value + set_formula + autofill + clear_range.
    assert_eq!(stats.edits, 4, "{stats:?}");
    assert_eq!(stats.sessions, 1);

    // Bad requests are typed, not fatal: the connection keeps working.
    assert!(matches!(client.get("Nope", c("A1")), Err(ServiceError::NoSuchSheet(_))));
    assert!(matches!(client.set_formula("Data", c("D1"), "=)("), Err(ServiceError::BadRequest(_))));
    assert_eq!(client.get("Data", c("B1")).unwrap(), n(120.0));

    client.close().unwrap();
    server.shutdown();
    registry.shutdown();
}

#[test]
fn demand_driven_reads_over_the_wire() {
    // Register the workbook *dirty*: three formulae await recalculation,
    // only two of which feed the viewport.
    let mut wb = Workbook::with_taco();
    let data = wb.add_sheet("Data").unwrap();
    for row in 1..=6u32 {
        wb.set_value(data, Cell::new(1, row), n(f64::from(row)));
    }
    wb.set_formula(data, c("B1"), "=SUM(A1:A6)").unwrap();
    wb.set_formula(data, c("B2"), "=B1+1").unwrap();
    wb.set_formula(data, c("D9"), "=A1*100").unwrap();

    // The full-recalc reference for the same build.
    let mut reference = Workbook::with_taco();
    let rd = reference.add_sheet("Data").unwrap();
    for row in 1..=6u32 {
        reference.set_value(rd, Cell::new(1, row), n(f64::from(row)));
    }
    reference.set_formula(rd, c("B1"), "=SUM(A1:A6)").unwrap();
    reference.set_formula(rd, c("B2"), "=B1+1").unwrap();
    reference.set_formula(rd, c("D9"), "=A1*100").unwrap();
    reference.recalculate(RecalcMode::Serial);

    let registry = Arc::new(Registry::new(ServiceOptions::default()));
    registry.add_workbook("lazy", wb, None).unwrap();
    let server = serve(Arc::clone(&registry));
    let mut client = TcpClient::connect(server.local_addr()).unwrap();
    client.open("lazy", None, None).unwrap();
    assert_eq!(client.dirty_count().unwrap(), 3);

    // A fresh viewport read demand-recalcs B1 and B2 but defers D9,
    // and the values match the full-recalc reference bit for bit.
    let viewport = Range::parse_a1("A1:B4").unwrap();
    let cells = client.get_range_fresh("Data", viewport).unwrap();
    for (cell, value) in &cells {
        assert_eq!(*value, reference.value(rd, *cell), "viewport cell {cell:?}");
    }
    assert!(cells.iter().any(|(cl, v)| *cl == c("B1") && *v == n(21.0)), "{cells:?}");
    assert!(cells.iter().any(|(cl, v)| *cl == c("B2") && *v == n(22.0)), "{cells:?}");
    assert_eq!(client.dirty_count().unwrap(), 1, "D9 stays lazily dirty");
    assert_eq!(client.get("Data", c("D9")).unwrap(), Value::Empty, "snapshot still stale");

    // RecalcRange against D9's corner evaluates exactly the deferred cell.
    let evaluated = client.recalc_range("Data", Range::parse_a1("D1:D9").unwrap()).unwrap();
    assert_eq!(evaluated, 1);
    assert_eq!(client.get("Data", c("D9")).unwrap(), n(100.0));
    assert_eq!(client.dirty_count().unwrap(), 0);

    // Convergence: a follow-up full recalc has nothing left to do.
    assert_eq!(client.recalc().unwrap(), 0);
    server.shutdown();
    registry.shutdown();
}

#[test]
fn writes_on_one_connection_are_visible_on_another() {
    let registry = Arc::new(Registry::new(ServiceOptions::default()));
    registry.add_workbook("shared", demo_workbook(), None).unwrap();
    let server = serve(Arc::clone(&registry));

    let mut writer = TcpClient::connect(server.local_addr()).unwrap();
    writer.open("shared", None, None).unwrap();
    let mut reader = TcpClient::connect(server.local_addr()).unwrap();
    reader.open("shared", None, None).unwrap();

    writer.set_value("Data", c("A6"), n(60.0)).unwrap();
    // The write's reply means its batch was published: the other
    // connection's next snapshot read sees it.
    assert_eq!(reader.get("Data", c("A6")).unwrap(), n(60.0));
    assert_eq!(reader.get("Data", c("B1")).unwrap(), n(75.0));
    server.shutdown();
    registry.shutdown();
}

#[test]
fn scoped_sessions_cannot_reach_or_observe_foreign_sheets() {
    let registry = Arc::new(Registry::new(ServiceOptions::default()));
    registry.add_workbook("sales", demo_workbook(), None).unwrap();
    let server = serve(Arc::clone(&registry));

    let mut client = TcpClient::connect(server.local_addr()).unwrap();
    let sheets = client.open("sales", None, Some(&["Data"])).unwrap();
    assert_eq!(sheets, vec!["Data".to_string()]);
    assert!(matches!(client.get("Summary", c("A1")), Err(ServiceError::OutOfScope(_))));
    assert!(matches!(
        client.set_value("Summary", c("A9"), n(1.0)),
        Err(ServiceError::OutOfScope(_))
    ));
    // Dependents of Data!A1 include Summary!A1 — filtered out of a scoped
    // session's view.
    let deps = client.dependents("Data", Range::parse_a1("A1").unwrap()).unwrap();
    assert!(deps.iter().all(|(s, _)| s == "Data"), "scope must filter results: {deps:?}");
    server.shutdown();
    registry.shutdown();
}

#[test]
fn structural_rewrites_and_ref_errors_over_the_wire() {
    let registry = Arc::new(Registry::new(ServiceOptions::default()));
    registry.add_workbook("sales", demo_workbook(), None).unwrap();
    let server = serve(Arc::clone(&registry));

    let mut client = TcpClient::connect(server.local_addr()).unwrap();
    client.open("sales", None, None).unwrap();

    // Inserting rows on Data shifts its rollup from B1 to B4; the
    // cross-sheet reference in Summary follows, so the value is stable.
    client.insert_rows("Data", 1, 3).unwrap();
    assert_eq!(client.get("Data", c("B4")).unwrap(), n(21.0));
    assert_eq!(client.get("Summary", c("A1")).unwrap(), n(42.0));
    let precs = client.precedents("Summary", Range::parse_a1("A1").unwrap()).unwrap();
    assert!(
        precs.iter().any(|(s, r)| s == "Data" && r.contains_cell(c("B4"))),
        "rewritten reference must point at the shifted cell: {precs:?}"
    );

    // Deleting the row that holds the referenced cell leaves `#REF!`
    // behind: the referrer evaluates to the reference error.
    client.delete_rows("Data", 4, 1).unwrap();
    assert_eq!(client.get("Summary", c("A1")).unwrap(), Value::Error(CellError::Ref));

    // Column edits work symmetrically and the connection stays healthy.
    // (Row 4 now holds the first surviving data value, 2.0.)
    client.insert_cols("Data", 1, 2).unwrap();
    assert_eq!(client.get("Data", c("C4")).unwrap(), n(2.0));
    client.delete_cols("Data", 1, 2).unwrap();
    assert_eq!(client.get("Data", c("A4")).unwrap(), n(2.0));

    server.shutdown();
    registry.shutdown();
}

/// The acceptance script: values, formulas, and all four structural
/// kinds, hitting both sheets (indices: 0 = Data, 1 = Summary).
fn structural_acceptance_script() -> Vec<EditRecord> {
    vec![
        EditRecord::SetValue { sheet: 0, cell: c("A1"), value: n(10.0) },
        EditRecord::Structural { sheet: 0, op: StructuralOp::InsertRows { at: 2, n: 3 } },
        EditRecord::SetFormula { sheet: 1, cell: c("B2"), src: "=Data!A5*4".into() },
        EditRecord::Structural { sheet: 0, op: StructuralOp::InsertCols { at: 1, n: 1 } },
        EditRecord::SetValue { sheet: 0, cell: c("B2"), value: n(-3.0) },
        EditRecord::Structural { sheet: 1, op: StructuralOp::InsertRows { at: 1, n: 2 } },
        EditRecord::Structural { sheet: 0, op: StructuralOp::DeleteRows { at: 5, n: 1 } },
        EditRecord::Structural { sheet: 0, op: StructuralOp::DeleteCols { at: 1, n: 1 } },
        EditRecord::SetValue { sheet: 0, cell: c("A2"), value: n(8.0) },
    ]
}

/// Runs one record through a TCP client (sheet index → name).
fn run_record(client: &mut TcpClient, names: &[&str], rec: &EditRecord) {
    match rec {
        EditRecord::SetValue { sheet, cell, value } => {
            client.set_value(names[*sheet as usize], *cell, value.clone()).unwrap();
        }
        EditRecord::SetFormula { sheet, cell, src } => {
            client.set_formula(names[*sheet as usize], *cell, src).unwrap();
        }
        EditRecord::ClearRange { sheet, range } => {
            client.clear_range(names[*sheet as usize], *range).unwrap();
        }
        EditRecord::Structural { sheet, op } => {
            let s = names[*sheet as usize];
            match *op {
                StructuralOp::InsertRows { at, n } => client.insert_rows(s, at, n).unwrap(),
                StructuralOp::DeleteRows { at, n } => client.delete_rows(s, at, n).unwrap(),
                StructuralOp::InsertCols { at, n } => client.insert_cols(s, at, n).unwrap(),
                StructuralOp::DeleteCols { at, n } => client.delete_cols(s, at, n).unwrap(),
            };
        }
        EditRecord::AddSheet { .. } => unreachable!("script has no AddSheet"),
    }
}

/// Sorted `(cell, value)` pairs of one sheet read over the wire.
fn wire_cells(client: &mut TcpClient, sheet: &str) -> Vec<(Cell, Value)> {
    client.get_range(sheet, Range::from_coords(1, 1, 24, 48)).unwrap()
}

/// Sorted `(cell, value)` pairs of one bare sheet.
fn bare_cells(wb: &Workbook, sheet: usize) -> Vec<(Cell, Value)> {
    let mut cells: Vec<(Cell, Value)> =
        wb.sheet(SheetId(sheet)).cells().map(|(cl, k)| (cl, k.value().clone())).collect();
    cells.sort_unstable_by_key(|(cl, _)| (cl.row, cl.col));
    cells
}

#[test]
fn structural_script_over_tcp_and_through_crash_reopen_matches_serial() {
    let names = ["Data", "Summary"];
    let script = structural_acceptance_script();

    // The in-process serial reference.
    let mut reference = demo_workbook();
    for rec in &script {
        reference.apply_edit(rec).expect("reference edit applies");
    }
    reference.recalculate(RecalcMode::Serial);

    // Run 1: the whole script over TCP against a plain workbook.
    {
        let registry = Arc::new(Registry::new(ServiceOptions::default()));
        registry.add_workbook("live", demo_workbook(), None).unwrap();
        let server = serve(Arc::clone(&registry));
        let mut client = TcpClient::connect(server.local_addr()).unwrap();
        client.open("live", None, None).unwrap();
        for rec in &script {
            run_record(&mut client, &names, rec);
        }
        client.recalc().unwrap();
        for (i, name) in names.iter().enumerate() {
            assert_eq!(
                wire_cells(&mut client, name),
                bare_cells(&reference, i),
                "TCP run must be bit-identical to the serial run ({name})"
            );
        }
        server.shutdown();
        registry.shutdown();
    }

    // Run 2: the same script with a crash in the middle — the first half
    // goes over TCP into a persistent backing, the server dies without
    // folding the WAL, and a reopened server takes the second half.
    let path =
        std::env::temp_dir().join(format!("taco_tcp_structural_crash_{}.taco", std::process::id()));
    let wal = taco_engine::wal_path(&path);
    let split = script.len() / 2;
    {
        let pw = PersistentWorkbook::create(
            &path,
            demo_workbook(),
            PersistOptions { compact_after_records: 0, sync_every_records: 1 },
        )
        .unwrap();
        let registry = Arc::new(Registry::new(ServiceOptions::default()));
        registry.add_persistent("durable", pw, None).unwrap();
        let server = serve(Arc::clone(&registry));
        let mut client = TcpClient::connect(server.local_addr()).unwrap();
        client.open("durable", None, None).unwrap();
        for rec in &script[..split] {
            run_record(&mut client, &names, rec);
        }
        // Crash: no Save request, so nothing is folded into the snapshot
        // — recovery must come from WAL replay alone.
        server.shutdown();
        registry.shutdown();
    }
    {
        let pw = PersistentWorkbook::open(
            &path,
            PersistOptions { compact_after_records: 0, sync_every_records: 1 },
        )
        .expect("reopen after crash");
        let registry = Arc::new(Registry::new(ServiceOptions::default()));
        registry.add_persistent("durable", pw, None).unwrap();
        let server = serve(Arc::clone(&registry));
        let mut client = TcpClient::connect(server.local_addr()).unwrap();
        client.open("durable", None, None).unwrap();
        for rec in &script[split..] {
            run_record(&mut client, &names, rec);
        }
        client.recalc().unwrap();
        for (i, name) in names.iter().enumerate() {
            assert_eq!(
                wire_cells(&mut client, name),
                bare_cells(&reference, i),
                "crash + WAL reopen must converge to the serial run ({name})"
            );
        }
        server.shutdown();
        registry.shutdown();
    }
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&wal).ok();
}

#[test]
fn structural_requests_respect_session_scope() {
    let registry = Arc::new(Registry::new(ServiceOptions::default()));
    registry.add_workbook("sales", demo_workbook(), None).unwrap();
    let server = serve(Arc::clone(&registry));

    let mut scoped = TcpClient::connect(server.local_addr()).unwrap();
    scoped.open("sales", None, Some(&["Data"])).unwrap();
    // Out-of-scope sheets cannot be structurally edited…
    assert!(matches!(scoped.insert_rows("Summary", 1, 1), Err(ServiceError::OutOfScope(_))));
    assert!(matches!(scoped.delete_cols("Summary", 1, 1), Err(ServiceError::OutOfScope(_))));
    // …but an in-scope edit goes through, and its workbook-wide rewrite
    // keeps the (out-of-scope) referrer consistent.
    scoped.insert_rows("Data", 1, 3).unwrap();
    assert_eq!(scoped.get("Data", c("B4")).unwrap(), n(21.0));
    assert!(matches!(scoped.get("Summary", c("A1")), Err(ServiceError::OutOfScope(_))));

    let mut unscoped = TcpClient::connect(server.local_addr()).unwrap();
    unscoped.open("sales", None, None).unwrap();
    assert_eq!(unscoped.get("Summary", c("A1")).unwrap(), n(42.0));

    server.shutdown();
    registry.shutdown();
}

#[test]
fn save_folds_the_wal_over_the_wire() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("taco_service_tcp_save_{}.taco", std::process::id()));
    let wal = taco_engine::wal_path(&path);
    {
        let pw = PersistentWorkbook::create(
            &path,
            demo_workbook(),
            PersistOptions { compact_after_records: 0, sync_every_records: 1 },
        )
        .unwrap();
        let registry = Arc::new(Registry::new(ServiceOptions::default()));
        registry.add_persistent("durable", pw, None).unwrap();
        let server = serve(Arc::clone(&registry));

        let mut client = TcpClient::connect(server.local_addr()).unwrap();
        client.open("durable", None, None).unwrap();
        for i in 0..5u32 {
            client.set_value("Data", Cell::new(4, i + 1), n(f64::from(i))).unwrap();
        }
        let remaining = client.save().unwrap();
        assert_eq!(remaining, 0, "save must fold the WAL into the snapshot");
        server.shutdown();
        registry.shutdown();
    }
    // The snapshot alone (WAL folded) carries the edits.
    let reopened = Workbook::open(&path).unwrap();
    assert_eq!(reopened.value(SheetId(0), Cell::new(4, 5)), n(4.0));
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&wal).ok();
}
