//! The service layer's concurrent property tests (the PR's acceptance
//! criteria):
//!
//! 1. K client threads issuing interleaved reads and writes against one
//!    workbook through the service yield, after quiesce, cell values
//!    **bit-identical** to the same edit script applied serially to a
//!    bare [`Workbook`];
//! 2. batched (coalescing) and unbatched modes agree — and batching
//!    never runs more recalculations than unbatched;
//! 3. a server backed by a [`PersistentWorkbook`] killed mid-script
//!    reopens to a clean **prefix** of the applied edits (per-client
//!    order preserved).
//!
//! The scripts come from `taco_workload::service`: per-client writes are
//! confined to client-owned columns (so every interleaving commutes),
//! while formulas deliberately read other clients' columns, the shared
//! data column, and the TACO-compressed rollup columns.

use std::sync::Arc;
use taco_engine::{PersistOptions, PersistentWorkbook, RecalcMode, SheetId, Workbook};
use taco_formula::Value;
use taco_grid::{Cell, Range};
use taco_service::{InProcClient, Registry, ServiceOptions, TcpClient};
use taco_service::{Server, ServerOptions, Transport};
use taco_store::{EditRecord, ReplayMode, WalReader};
use taco_workload::service::{
    client_value_col, gen_service_script, mixed, writer_heavy, ClientOp, ServiceScript,
    ServiceScriptParams,
};

/// Builds the script's shared workbook (setup applied, recalculated).
fn setup_workbook(script: &ServiceScript) -> Workbook {
    let mut wb = Workbook::with_taco();
    for rec in &script.setup {
        wb.apply_edit(rec).expect("setup applies");
    }
    wb.recalculate(RecalcMode::Serial);
    wb
}

/// The serial reference: setup + the flattened client writes on a bare
/// workbook, fully recalculated.
fn serial_reference(script: &ServiceScript) -> Workbook {
    let mut wb = setup_workbook(script);
    for rec in &script.serial_writes() {
        wb.apply_edit(rec).expect("serial write applies");
    }
    wb.recalculate(RecalcMode::Serial);
    wb
}

/// Sorted `(cell, value)` pairs of one bare sheet.
fn bare_cells(wb: &Workbook) -> Vec<(Cell, Value)> {
    let mut cells: Vec<(Cell, Value)> =
        wb.sheet(SheetId(0)).cells().map(|(c, k)| (c, k.value().clone())).collect();
    cells.sort_unstable_by_key(|(c, _)| (c.row, c.col));
    cells
}

/// Runs one op through a client, tolerating no errors (the scripts are
/// valid by construction).
fn run_op<T: Transport>(client: &mut taco_service::Client<T>, sheet: &str, op: &ClientOp) {
    let r: Result<(), taco_service::ServiceError> = match op {
        ClientOp::Get { cell } => client.get(sheet, *cell).map(drop),
        ClientOp::GetRange { range } => client.get_range(sheet, *range).map(drop),
        ClientOp::Dependents { range } => client.dependents(sheet, *range).map(drop),
        ClientOp::Precedents { range } => client.precedents(sheet, *range).map(drop),
        ClientOp::DirtyCount => client.dirty_count().map(drop),
        ClientOp::SetValue { cell, value } => {
            client.set_value(sheet, *cell, Value::Number(*value)).map(drop)
        }
        ClientOp::SetFormula { cell, src } => client.set_formula(sheet, *cell, src).map(drop),
        ClientOp::ClearRange { range } => client.clear_range(sheet, *range).map(drop),
        ClientOp::Recalc => client.recalc().map(drop),
    };
    r.unwrap_or_else(|e| panic!("script op {op:?} failed: {e}"));
}

/// Drives the script's clients on real threads against `registry`, then
/// quiesces. Returns the service's final sorted cell state.
fn run_in_process(registry: &Arc<Registry>, script: &ServiceScript) -> Vec<(Cell, Value)> {
    crossbeam::thread::scope(|s| {
        for ops in &script.clients {
            let reg = Arc::clone(registry);
            s.spawn(move |_| {
                let mut client = InProcClient::in_process(reg);
                client.open("book", None, None).expect("open");
                for op in ops {
                    run_op(&mut client, &script.sheet, op);
                }
                client.close().expect("close");
            });
        }
    })
    .expect("client scope");
    let mut client = InProcClient::in_process(Arc::clone(registry));
    client.open("book", None, None).expect("open");
    client.recalc().expect("quiesce");
    let snap = registry.snapshot("book").expect("snapshot");
    assert_eq!(snap.dirty, 0, "quiesced service must have nothing dirty");
    snap.cells_in(0, Range::from_coords(1, 1, 64, 1024))
}

#[test]
fn concurrent_clients_match_serial_application() {
    for p in [mixed(), writer_heavy()] {
        for coalesce in [true, false] {
            let script = gen_service_script(&p);
            let registry =
                Arc::new(Registry::new(ServiceOptions { coalesce, ..ServiceOptions::default() }));
            registry.add_workbook("book", setup_workbook(&script), None).unwrap();
            let got = run_in_process(&registry, &script);
            let want = bare_cells(&serial_reference(&script));
            assert_eq!(
                got, want,
                "{} coalesce={coalesce}: concurrent service state must be bit-identical \
                 to the serial script",
                p.name
            );
        }
    }
}

#[test]
fn batched_and_unbatched_agree_and_batching_never_recalcs_more() {
    let script = gen_service_script(&writer_heavy());
    let mut finals = Vec::new();
    let mut recalcs = Vec::new();
    for coalesce in [true, false] {
        let registry =
            Arc::new(Registry::new(ServiceOptions { coalesce, ..ServiceOptions::default() }));
        registry.add_workbook("book", setup_workbook(&script), None).unwrap();
        finals.push(run_in_process(&registry, &script));
        let mut client = InProcClient::in_process(Arc::clone(&registry));
        client.open("book", None, None).unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(
            stats.edits,
            script.clients.iter().flatten().filter(|op| op.is_write()).count() as u64
                - script
                    .clients
                    .iter()
                    .flatten()
                    .filter(|op| matches!(op, ClientOp::Recalc))
                    .count() as u64,
            "every write must be counted once (coalesce={coalesce})"
        );
        recalcs.push(stats.recalcs);
    }
    assert_eq!(finals[0], finals[1], "batched and unbatched final states must agree");
    assert!(
        recalcs[0] <= recalcs[1],
        "batched recalc count ({}) must not exceed unbatched ({})",
        recalcs[0],
        recalcs[1]
    );
}

#[test]
fn tcp_clients_match_serial_application() {
    // The same property over the wire, with a smaller script (each op is
    // a full request/response round trip).
    let p = ServiceScriptParams { clients: 3, ops_per_client: 60, ..mixed() };
    let script = gen_service_script(&p);
    let registry = Arc::new(Registry::new(ServiceOptions::default()));
    registry.add_workbook("book", setup_workbook(&script), None).unwrap();
    let server =
        Server::start(Arc::clone(&registry), "127.0.0.1:0", ServerOptions::default()).unwrap();
    let addr = server.local_addr();

    crossbeam::thread::scope(|s| {
        let script = &script;
        for ops in &script.clients {
            s.spawn(move |_| {
                let mut client = TcpClient::connect(addr).expect("connect");
                client.open("book", None, None).expect("open");
                for op in ops {
                    run_op(&mut client, &script.sheet, op);
                }
                client.close().expect("close");
            });
        }
    })
    .expect("client scope");

    let mut client = TcpClient::connect(addr).expect("connect");
    client.open("book", None, None).expect("open");
    client.recalc().expect("quiesce");
    let got = client.get_range(&script.sheet, Range::from_coords(1, 1, 64, 1024)).expect("read");
    let want = bare_cells(&serial_reference(&script));
    assert_eq!(got, want, "TCP concurrent state must match the serial script");
    server.shutdown();
    registry.shutdown();
}

#[test]
fn persistent_server_killed_mid_script_reopens_to_a_clean_prefix() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("taco_service_crash_{}.taco", std::process::id()));
    let wal = taco_engine::wal_path(&path);
    let p = ServiceScriptParams { clients: 4, ops_per_client: 80, ..writer_heavy() };
    let script = gen_service_script(&p);

    {
        let pw = PersistentWorkbook::create(
            &path,
            setup_workbook(&script),
            // No compaction: the WAL keeps the whole applied edit order,
            // which is what the prefix check below inspects.
            PersistOptions { compact_after_records: 0, sync_every_records: 1 },
        )
        .unwrap();
        let registry = Arc::new(Registry::new(ServiceOptions::default()));
        registry.add_persistent("book", pw, None).unwrap();

        // Kill the server partway through the script: a killer thread
        // pulls the plug while the clients are still writing. Clients
        // tolerate ShuttingDown from that point on.
        crossbeam::thread::scope(|s| {
            let script = &script;
            for ops in &script.clients {
                let reg = Arc::clone(&registry);
                s.spawn(move |_| {
                    let mut client = InProcClient::in_process(reg);
                    if client.open("book", None, None).is_err() {
                        return;
                    }
                    for op in ops {
                        let r = match op {
                            ClientOp::SetValue { cell, value } => {
                                client.set_value(&script.sheet, *cell, Value::Number(*value))
                            }
                            ClientOp::SetFormula { cell, src } => {
                                client.set_formula(&script.sheet, *cell, src)
                            }
                            ClientOp::ClearRange { range } => {
                                client.clear_range(&script.sheet, *range)
                            }
                            _ => continue,
                        };
                        if r.is_err() {
                            return; // the plug was pulled
                        }
                    }
                });
            }
            let reg = Arc::clone(&registry);
            s.spawn(move |_| {
                std::thread::sleep(std::time::Duration::from_millis(15));
                reg.shutdown();
            });
        })
        .expect("scope");
    }

    // Simulate the kill also tearing the final WAL record.
    let bytes = std::fs::read(&wal).unwrap();
    if bytes.len() > 8 {
        std::fs::write(&wal, &bytes[..bytes.len() - 3]).unwrap();
    }

    // What survived must be a per-client prefix of the script, in each
    // client's issue order.
    let replay = WalReader::load(&wal, ReplayMode::TolerateTear).unwrap();
    for (k, ops) in script.clients.iter().enumerate() {
        let vcol = client_value_col(k);
        let mine = |rec: &&EditRecord| match rec {
            EditRecord::SetValue { cell, .. } | EditRecord::SetFormula { cell, .. } => {
                cell.col == vcol || cell.col == vcol + 1
            }
            EditRecord::ClearRange { range, .. } => range.head().col == vcol,
            EditRecord::AddSheet { .. } | EditRecord::Structural { .. } => false,
        };
        let recorded: Vec<&EditRecord> = replay.records.iter().filter(mine).collect();
        let issued: Vec<EditRecord> = ops
            .iter()
            .filter_map(|op| match op {
                ClientOp::SetValue { cell, value } => Some(EditRecord::SetValue {
                    sheet: 0,
                    cell: *cell,
                    value: Value::Number(*value),
                }),
                ClientOp::SetFormula { cell, src } => {
                    Some(EditRecord::SetFormula { sheet: 0, cell: *cell, src: src.clone() })
                }
                ClientOp::ClearRange { range } => {
                    Some(EditRecord::ClearRange { sheet: 0, range: *range })
                }
                _ => None,
            })
            .collect();
        assert!(recorded.len() <= issued.len(), "client {k}: more edits recorded than issued");
        for (i, rec) in recorded.iter().enumerate() {
            assert_eq!(**rec, issued[i], "client {k}: record {i} out of order — not a prefix");
        }
    }

    // And the reopened workbook must equal the bare workbook with
    // exactly those surviving records applied.
    let mut reopened = Workbook::open(&path).expect("reopen after kill");
    let mut reference = setup_workbook(&script);
    for rec in &replay.records {
        reference.apply_edit(rec).expect("recorded edit applies");
    }
    reopened.recalculate(RecalcMode::Serial);
    reference.recalculate(RecalcMode::Serial);
    assert_eq!(
        bare_cells(&reopened),
        bare_cells(&reference),
        "reopened state must be the clean prefix of the applied edits"
    );

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&wal).ok();
}

#[test]
fn snapshot_reads_never_see_torn_batches() {
    // A reader hammering Get while writers run must only ever observe
    // published epochs: the rollup SUM($A$1:A64) and its copy must stay
    // mutually consistent (both from the same epoch) on every read.
    let script = gen_service_script(&ServiceScriptParams {
        clients: 2,
        ops_per_client: 60,
        ..writer_heavy()
    });
    let registry = Arc::new(Registry::new(ServiceOptions::default()));
    let mut wb = setup_workbook(&script);
    // Two cells forced equal by construction: Z1 and Z2 both copy A1.
    let z = Cell::new(26, 1);
    let z2 = Cell::new(26, 2);
    wb.set_formula(SheetId(0), z, "=A1*3").unwrap();
    wb.set_formula(SheetId(0), z2, "=A1*3").unwrap();
    wb.recalculate(RecalcMode::Serial);
    registry.add_workbook("book", wb, None).unwrap();

    crossbeam::thread::scope(|s| {
        let script = &script;
        // Writers keep changing A1 (a shared setup cell — fine here, the
        // test compares reads against reads, not against a serial
        // reference).
        let reg = Arc::clone(&registry);
        s.spawn(move |_| {
            let mut client = InProcClient::in_process(reg);
            client.open("book", None, None).unwrap();
            for i in 0..200 {
                client
                    .set_value(&script.sheet, Cell::new(1, 1), Value::Number(f64::from(i)))
                    .unwrap();
            }
        });
        for _ in 0..2 {
            let reg = Arc::clone(&registry);
            let sheet = script.sheet.clone();
            s.spawn(move |_| {
                let mut client = InProcClient::in_process(reg);
                client.open("book", None, None).unwrap();
                for _ in 0..300 {
                    let cells = client
                        .get_range(&sheet, Range::from_coords(26, 1, 26, 2))
                        .expect("snapshot read");
                    let va = cells.iter().find(|(c, _)| *c == z).map(|(_, v)| v.clone());
                    let vb = cells.iter().find(|(c, _)| *c == z2).map(|(_, v)| v.clone());
                    assert_eq!(va, vb, "one snapshot read must be epoch-consistent");
                }
            });
        }
    })
    .expect("scope");
    registry.shutdown();
}
