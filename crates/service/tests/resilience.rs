//! End-to-end resilience: a TCP client that survives mid-script
//! connection loss through retry + re-open and converges bit-identically
//! to a serial reference; per-request deadlines that bound worker
//! round-trips without touching snapshot reads; and the typed `Degraded`
//! state — entered on a storage fault, visible in `Stats` and the
//! metrics hub, healed by a successful `Save`.

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;
use taco_engine::{PersistOptions, PersistentWorkbook, RecalcMode, Workbook};
use taco_formula::Value;
use taco_grid::{Cell, Range};
use taco_service::{
    InProcClient, Registry, RetryPolicy, Server, ServerOptions, ServiceError, ServiceOptions,
    TcpClient,
};
use taco_store::{FaultPlan, FaultVfs, Vfs};

/// The acceptance scenario: a scripted edit sequence over TCP, severed
/// twice mid-script by the server dropping every live connection. The
/// retrying client reconnects, re-opens its session, resumes — and the
/// final grid matches a serial reference workbook bit-for-bit.
#[test]
fn tcp_crash_mid_script_retries_and_converges() {
    let reg = Arc::new(Registry::new(ServiceOptions::default()));
    let mut wb = Workbook::with_taco();
    wb.add_sheet("Data").unwrap();
    reg.add_workbook("book", wb, None).unwrap();
    let server = Server::start(Arc::clone(&reg), "127.0.0.1:0", ServerOptions::default()).unwrap();

    let mut reference = Workbook::with_taco();
    let rsheet = reference.add_sheet("Data").unwrap();

    let mut client = TcpClient::connect(server.local_addr()).unwrap();
    client.set_retry(RetryPolicy {
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(20),
        ..RetryPolicy::default()
    });
    client.open("book", None, None).unwrap();

    for round in 0..3u32 {
        for row in 1..=10u32 {
            let v = f64::from(round * 100 + row);
            client.set_value("Data", Cell::new(1, row), Value::Number(v)).unwrap();
            reference.set_value(rsheet, Cell::new(1, row), Value::Number(v));
        }
        let src = format!("=SUM(A1:A10)+{round}");
        client.set_formula("Data", Cell::new(2, 1), &src).unwrap();
        reference.set_formula(rsheet, Cell::new(2, 1), &src).unwrap();
        // Sever every live connection mid-script. The next call is
        // idempotent, so the client may safely reconnect, re-open, and
        // re-send it; the writes before the cut were all acknowledged.
        server.drop_connections();
        client.recalc().unwrap();
    }
    reference.recalculate(RecalcMode::Serial);

    assert!(client.retries_attempted() > 0, "the severed script must actually have retried");
    let viewport = Range::from_coords(1, 1, 2, 10);
    let cells = client.get_range_fresh("Data", viewport).unwrap();
    assert_eq!(cells.len(), 11, "10 values + 1 formula");
    for (cell, value) in cells {
        assert_eq!(value, reference.value(rsheet, cell), "cell {cell:?} diverged");
    }
    client.close().unwrap();
    server.shutdown();
    reg.shutdown();
}

/// A zero deadline times out every worker round-trip deterministically —
/// while snapshot reads (which never queue) keep answering, and the
/// timed-out write still lands: "deadline exceeded" means *unknown*,
/// not *not applied*.
#[test]
fn zero_deadline_bounds_worker_ops_not_snapshot_reads() {
    let opts = ServiceOptions { deadline: Some(Duration::ZERO), ..ServiceOptions::default() };
    let reg = Arc::new(Registry::new(opts));
    let mut wb = Workbook::with_taco();
    wb.add_sheet("Data").unwrap();
    reg.add_workbook("book", wb, None).unwrap();
    let mut client = InProcClient::in_process(Arc::clone(&reg));
    client.open("book", None, None).unwrap();

    // Tiny one-message round-trips can beat even a zero deadline (the
    // worker replies before the caller polls), so settle them first…
    let _ = client.set_value("Data", Cell::new(1, 1), Value::Number(7.0));
    let _ = client.set_formula("Data", Cell::new(2, 1), "=A1+1");
    assert!(reg.quiesce("book"));

    // …then ask for work that provably outlives a zero deadline: a
    // 20k-cell autofill keeps the worker busy for milliseconds, so the
    // immediate reply poll finds nothing — deterministically.
    let targets = Range::from_coords(2, 2, 2, 20_000);
    let err = client.autofill("Data", Cell::new(2, 1), targets).unwrap_err();
    assert_eq!(err, ServiceError::DeadlineExceeded);
    // A request queued behind the busy worker times out too.
    assert_eq!(client.recalc().unwrap_err(), ServiceError::DeadlineExceeded);

    // Snapshot reads bypass the worker queue entirely.
    client.get("Data", Cell::new(1, 1)).unwrap();
    let stats = client.stats().unwrap();
    assert!(stats.deadline_expired >= 2, "got {}", stats.deadline_expired);
    assert_eq!(stats.degraded, 0);

    // Drain the write queue: the timed-out operations were applied
    // anyway — "deadline exceeded" reports unknown fate, not rollback.
    assert!(reg.quiesce("book"));
    assert_eq!(client.get("Data", Cell::new(1, 1)).unwrap(), Value::Number(7.0));
    assert_eq!(client.get("Data", Cell::new(2, 1)).unwrap(), Value::Number(8.0));
    // The fill rebased its relative reference: B20000 = A20000 + 1 over
    // an empty A20000 — a value only the applied autofill could leave.
    assert_eq!(client.get("Data", Cell::new(2, 20_000)).unwrap(), Value::Number(1.0));
    reg.shutdown();
}

/// A WAL append that hits a full disk degrades the workbook: writes are
/// refused with the typed reason, reads keep working, `Stats` and the
/// fleet gauge say so — and once storage recovers, one successful `Save`
/// (which rewrites the snapshot from live state) heals it.
#[test]
fn storage_fault_degrades_workbook_and_save_heals_it() {
    let fv = FaultVfs::pristine(7);
    let disk: Arc<dyn Vfs> = Arc::new(fv.clone());
    let mut wb = Workbook::with_taco();
    wb.add_sheet("Data").unwrap();
    let popts = PersistOptions { compact_after_records: 0, sync_every_records: 1 };
    let pers = PersistentWorkbook::create_with(disk, Path::new("book.taco"), wb, popts).unwrap();

    let reg = Arc::new(Registry::new(ServiceOptions { obs: true, ..ServiceOptions::default() }));
    reg.add_persistent("book", pers, None).unwrap();
    let mut client = InProcClient::in_process(Arc::clone(&reg));
    client.open("book", None, None).unwrap();

    client.set_value("Data", Cell::new(1, 1), Value::Number(1.0)).unwrap();
    assert!(reg.quiesce("book"));
    assert_eq!(client.stats().unwrap().degraded, 0);

    // The disk fills: the next append fails, the workbook degrades.
    fv.set_plan(FaultPlan { disk_capacity: Some(0), ..FaultPlan::none(7) });
    let err = client.set_value("Data", Cell::new(1, 2), Value::Number(2.0)).unwrap_err();
    assert!(matches!(err, ServiceError::Degraded(_)), "got {err:?}");
    // Degraded is sticky across requests...
    let again = client.set_value("Data", Cell::new(1, 3), Value::Number(3.0)).unwrap_err();
    assert!(matches!(again, ServiceError::Degraded(_)), "got {again:?}");
    // ...reads keep working...
    assert_eq!(client.get("Data", Cell::new(1, 1)).unwrap(), Value::Number(1.0));
    // ...and both Stats and the fleet gauge report it.
    assert_eq!(client.stats().unwrap().degraded, 1);
    assert_eq!(degraded_gauge(&mut client), 1);

    // Storage recovers; Save rewrites the snapshot from live memory and
    // heals the workbook.
    fv.set_plan(FaultPlan::none(7));
    client.save().unwrap();
    assert_eq!(client.stats().unwrap().degraded, 0);
    assert_eq!(degraded_gauge(&mut client), 0);
    client.set_value("Data", Cell::new(1, 4), Value::Number(4.0)).unwrap();
    assert!(reg.quiesce("book"));
    assert_eq!(client.get("Data", Cell::new(1, 4)).unwrap(), Value::Number(4.0));
    reg.shutdown();
}

fn degraded_gauge(client: &mut InProcClient) -> i64 {
    let snap = client.metrics().unwrap();
    snap.gauges
        .iter()
        .find(|g| g.name == "taco_degraded_workbooks")
        .map(|g| g.value)
        .expect("gauge registered")
}
