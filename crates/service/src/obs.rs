//! Service observability: the request-layer handle bundle a [`Registry`]
//! holds when its hub is enabled. Registration (per-operation latency
//! histograms, refusal counters, load gauges) happens once at registry
//! construction; request dispatch then records through plain field access
//! and never formats a label or allocates.
//!
//! [`Registry`]: crate::registry::Registry

use crate::protocol::{OP_LABELS, OP_NAMES};
use std::sync::Arc;
use std::time::Instant;
use taco_obs::{Counter, Gauge, Histogram, Obs, SpanCat, TraceContext, Tracer};

/// Pre-registered handles for the service layer, indexed by request tag.
pub(crate) struct ServiceObs {
    /// The hub itself — workbooks registered later attach to it, and the
    /// `Metrics` request snapshots it.
    pub(crate) hub: Arc<Obs>,
    /// `taco_request_ns{op="..."}` — one latency histogram per operation.
    req_ns: Vec<Histogram>,
    /// `taco_coalesce_batch` — writes absorbed per worker batch.
    pub(crate) coalesce_batch: Histogram,
    /// `taco_sessions` / `taco_connections` — current load gauges.
    pub(crate) sessions: Gauge,
    pub(crate) connections: Gauge,
    /// Refusal counters (mirrored into the always-on [`ServiceStats`]
    /// atomics by the registry).
    ///
    /// [`ServiceStats`]: crate::protocol::ServiceStats
    pub(crate) busy_rejected: Counter,
    pub(crate) auth_failures: Counter,
    pub(crate) scope_denials: Counter,
    /// `taco_degraded_workbooks` — workbooks currently read-only after a
    /// storage fault (a WAL append or snapshot save that failed); falls
    /// back to 0 as `Save` heals them.
    pub(crate) degraded_books: Gauge,
    /// `taco_deadline_expired_total` — requests answered with
    /// [`ServiceError::DeadlineExceeded`].
    ///
    /// [`ServiceError::DeadlineExceeded`]: crate::ServiceError::DeadlineExceeded
    pub(crate) deadline_expired: Counter,
    pub(crate) tracer: Tracer,
}

impl ServiceObs {
    /// Registers the service metric set against `hub`.
    pub(crate) fn new(hub: Arc<Obs>) -> ServiceObs {
        let m = &hub.metrics;
        let req_ns =
            OP_LABELS.iter().map(|labels| m.histogram_with("taco_request_ns", labels)).collect();
        ServiceObs {
            req_ns,
            coalesce_batch: m.histogram("taco_coalesce_batch"),
            sessions: m.gauge("taco_sessions"),
            connections: m.gauge("taco_connections"),
            busy_rejected: m.counter("taco_busy_rejected_total"),
            auth_failures: m.counter("taco_auth_failures_total"),
            scope_denials: m.counter("taco_scope_denials_total"),
            degraded_books: m.gauge("taco_degraded_workbooks"),
            deadline_expired: m.counter("taco_deadline_expired_total"),
            tracer: hub.tracer.clone(),
            hub,
        }
    }

    /// A request's start stamps (wall anchor + hub-clock nanoseconds).
    pub(crate) fn start(&self) -> (Instant, u64) {
        (Instant::now(), self.tracer.now_ns())
    }

    /// The root span context for one request: a child of the wire-carried
    /// context when the client sent a traced wrapper, else a fresh root.
    pub(crate) fn request_ctx(&self, wire: Option<TraceContext>) -> TraceContext {
        match wire {
            Some(w) => self.tracer.child_of(w),
            None => self.tracer.new_root(),
        }
    }

    /// Records one completed request: its per-operation latency histogram
    /// plus a `Request` span at `ctx` — the root every span the request
    /// caused (engine levels, WAL appends, publication) nests under.
    /// Payload words: `a` = request tag, `b` = wire payload size in bytes
    /// (0 for in-process execution).
    pub(crate) fn on_request(
        &self,
        tag: u8,
        start: Instant,
        start_ns: u64,
        ctx: TraceContext,
        payload_len: u64,
    ) {
        let dur = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if let Some(h) = self.req_ns.get(tag as usize) {
            h.record(dur);
        }
        let name = OP_NAMES.get(tag as usize).copied().unwrap_or("unknown");
        self.tracer.record_at(
            name,
            SpanCat::Request,
            ctx,
            start_ns,
            dur,
            u64::from(tag),
            payload_len,
        );
    }
}
