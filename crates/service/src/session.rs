//! Sessions: authentication tokens and per-session sheet scoping.
//!
//! A session is created by a successful `Open` against a registered
//! workbook. Its lifecycle:
//!
//! 1. **open** — the client presents the workbook's auth token (when the
//!    workbook requires one) and optionally a *scope*: a subset of sheet
//!    names the session is allowed to touch. The registry validates both
//!    and issues an opaque [`SessionToken`];
//! 2. **use** — every subsequent request carries the token; the registry
//!    resolves it to the session and enforces the scope on each sheet the
//!    request names (out-of-scope sheets are [`OutOfScope`], and query
//!    results are filtered down to the scope so a scoped session cannot
//!    observe foreign sheets even transitively);
//! 3. **close** — an explicit `Close`, or transport teardown: the TCP
//!    server closes every session a connection opened when that
//!    connection ends, so dropped clients never leak sessions.
//!
//! Tokens are opaque 64-bit values drawn from a per-registry sequence
//! mixed through a 64-bit finalizer; they make stale or cross-registry
//! tokens practically unguessable but are **not** a cryptographic
//! capability — transport security is out of scope here.
//!
//! [`OutOfScope`]: crate::ServiceError::OutOfScope

use crate::ServiceError;
use std::collections::HashSet;

/// An opaque session identifier, issued by `Open` and carried by every
/// subsequent request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionToken(pub u64);

impl SessionToken {
    /// Mixes a sequence number and a registry seed into an opaque token
    /// (the splitmix64 finalizer: bijective, so distinct sequence numbers
    /// can never collide for a fixed seed).
    pub fn mint(seq: u64, seed: u64) -> Self {
        let mut z = seq.wrapping_add(seed).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SessionToken(z ^ (z >> 31))
    }
}

/// One open session: which workbook it is bound to and which sheets it
/// may touch.
#[derive(Debug, Clone)]
pub struct Session {
    /// The registry key (lower-cased workbook name) this session is
    /// bound to.
    pub workbook: String,
    /// Allowed sheets, lower-cased; `None` = every sheet.
    pub scope: Option<HashSet<String>>,
}

impl Session {
    /// An unrestricted session on `workbook` (already lower-cased).
    pub fn new(workbook: String, scope: Option<HashSet<String>>) -> Self {
        Session { workbook, scope }
    }

    /// Whether the session may touch `sheet` (name compared
    /// case-insensitively, like the engine's sheet index).
    pub fn allows(&self, sheet: &str) -> bool {
        match &self.scope {
            None => true,
            Some(s) => s.contains(&sheet.to_ascii_lowercase()),
        }
    }

    /// Scope check as a typed error.
    pub fn check(&self, sheet: &str) -> Result<(), ServiceError> {
        if self.allows(sheet) {
            Ok(())
        } else {
            Err(ServiceError::OutOfScope(sheet.to_string()))
        }
    }

    /// Filters `(sheet, _)` result pairs down to the scope — used on
    /// query responses so a scoped session cannot observe foreign sheets
    /// even through transitive dependencies.
    pub fn filter_ranges<T>(&self, mut ranges: Vec<(String, T)>) -> Vec<(String, T)> {
        if let Some(scope) = &self.scope {
            ranges.retain(|(sheet, _)| scope.contains(&sheet.to_ascii_lowercase()));
        }
        ranges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_are_distinct_and_seed_dependent() {
        let a: Vec<u64> = (0..64).map(|i| SessionToken::mint(i, 1).0).collect();
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len(), "sequence tokens must not collide");
        assert_ne!(SessionToken::mint(0, 1), SessionToken::mint(0, 2));
    }

    #[test]
    fn scope_is_case_insensitive() {
        let scope: HashSet<String> = ["data".to_string()].into_iter().collect();
        let s = Session::new("book".into(), Some(scope));
        assert!(s.allows("Data"));
        assert!(s.allows("DATA"));
        assert!(!s.allows("Other"));
        assert!(matches!(s.check("Other"), Err(ServiceError::OutOfScope(_))));
        let filtered = s.filter_ranges(vec![("Data".to_string(), 1u8), ("Other".to_string(), 2u8)]);
        assert_eq!(filtered, vec![("Data".to_string(), 1u8)]);
    }

    #[test]
    fn unscoped_session_allows_everything() {
        let s = Session::new("book".into(), None);
        assert!(s.allows("Anything"));
        assert!(s.check("Anything").is_ok());
    }
}
