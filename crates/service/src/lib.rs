//! `taco_service` — a concurrent multi-workbook serving layer over the
//! TACO engine: sessions, lock-free snapshot reads, single-writer queues
//! with batch coalescing, and a framed TCP wire protocol.
//!
//! The paper makes dependents/precedents queries and dirty propagation
//! cheap enough to answer interactively; this crate is the subsystem that
//! lets *many concurrent clients over many workbooks* actually ask. The
//! pieces:
//!
//! - [`protocol`] — the command set (`Open`, `SetValue`, `SetFormula`,
//!   `Autofill`, `ClearRange`, `Get`, `GetRange`, `Dependents`,
//!   `Precedents`, `DirtyCount`, `Recalc`, `Save`, `Stats`, `Close`) as
//!   plain-data [`Request`]/[`Response`] enums with a compact binary
//!   encoding built from `taco_store`'s codec layer;
//! - [`session`] — per-session authentication tokens and sheet scoping;
//! - [`registry`] — the server core: a registry of named workbooks, each
//!   owned by a **single writer thread**. Reads execute against epoch
//!   [`Snapshot`]s (an `Arc` swapped under a lock held only for the
//!   pointer exchange — readers never wait for a write to apply or a
//!   recalculation to finish); writes are funneled through the owner
//!   thread's queue, which **coalesces** queued edits into one
//!   [`Workbook::apply_batch`] + one recalculation instead of N
//!   ([`ServiceOptions::coalesce`]);
//! - [`server`] — a thread-per-connection TCP acceptor over `std::net`
//!   with length-prefixed CRC-checked frames ([`taco_store::frame`]), a
//!   connection limit, and graceful shutdown;
//! - [`client`] — the same typed [`Client`] surface over two transports:
//!   in-process ([`InProcClient`]) and TCP ([`TcpClient`]).
//!
//! Every failure — bad auth, out-of-scope sheet, corrupt frame, peer
//! disconnect, oversized declared length — is a typed [`ServiceError`];
//! malformed input never panics a server thread and never wedges the
//! acceptor.
//!
//! [`Workbook::apply_batch`]: taco_engine::Workbook::apply_batch
//! [`Request`]: protocol::Request
//! [`Response`]: protocol::Response
//! [`Snapshot`]: registry::Snapshot

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
mod obs;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod session;

pub use client::{Client, InProcClient, RetryPolicy, TcpClient, Transport};
pub use http::HttpSidecar;
pub use protocol::{Request, Response, ServiceStats};
pub use registry::{Registry, ServiceOptions, Snapshot};
pub use server::{Server, ServerOptions};
pub use session::{Session, SessionToken};

use std::fmt;
use taco_store::StoreError;

/// Errors from every service layer; encodable on the wire so a server can
/// report them to the offending client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// `Open` named a workbook the registry does not serve.
    NoSuchWorkbook(String),
    /// `Open`'s auth token did not match the workbook's.
    AuthFailed,
    /// The request carried no valid session token (expired, closed, or
    /// never issued).
    NoSession,
    /// The named sheet does not exist in the workbook.
    NoSuchSheet(String),
    /// The session's sheet scope does not cover the named sheet.
    OutOfScope(String),
    /// A structurally valid request that cannot be honoured (bad formula,
    /// unapplicable edit…).
    BadRequest(String),
    /// `Save` against a workbook with no persistent backing store.
    NotPersistent,
    /// The workbook is degraded: a storage fault left its write-ahead
    /// log (or snapshot file) behind the live state, so writes are
    /// refused until a successful `Save` rewrites the snapshot from the
    /// live workbook and heals the log. Reads keep working throughout.
    /// The payload says which fault started it.
    Degraded(String),
    /// The per-request deadline ([`ServiceOptions::deadline`]) elapsed
    /// before the workbook's writer replied. The operation may still
    /// complete after the fact — for writes, "deadline exceeded" means
    /// *unknown*, not *not applied*.
    DeadlineExceeded,
    /// The server is at its connection limit.
    Busy,
    /// The server (or this workbook's writer) is shutting down.
    ShuttingDown,
    /// A framing or decoding failure on the transport.
    Wire(StoreError),
    /// A transport I/O failure (connect, read, write).
    Io(String),
    /// The peer answered with a response the protocol does not allow for
    /// the request (a protocol bug, not an I/O failure).
    Protocol(&'static str),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::NoSuchWorkbook(n) => write!(f, "no workbook named {n:?}"),
            ServiceError::AuthFailed => write!(f, "authentication failed"),
            ServiceError::NoSession => write!(f, "no such session (open a workbook first)"),
            ServiceError::NoSuchSheet(n) => write!(f, "no sheet named {n:?}"),
            ServiceError::OutOfScope(n) => write!(f, "sheet {n:?} is outside the session scope"),
            ServiceError::BadRequest(why) => write!(f, "bad request: {why}"),
            ServiceError::NotPersistent => write!(f, "workbook has no persistent backing store"),
            ServiceError::Degraded(why) => {
                write!(f, "workbook degraded (read-only until a successful Save): {why}")
            }
            ServiceError::DeadlineExceeded => write!(f, "request deadline exceeded"),
            ServiceError::Busy => write!(f, "server is at its connection limit"),
            ServiceError::ShuttingDown => write!(f, "server is shutting down"),
            ServiceError::Wire(e) => write!(f, "wire error: {e}"),
            ServiceError::Io(why) => write!(f, "transport i/o error: {why}"),
            ServiceError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<StoreError> for ServiceError {
    fn from(e: StoreError) -> Self {
        ServiceError::Wire(e)
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e.to_string())
    }
}
