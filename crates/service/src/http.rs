//! Minimal scrape sidecar: a `std::net` HTTP/1.0 listener serving the
//! hub's exposition formats so Prometheus (or a browser) can pull them
//! without speaking the TACO wire protocol.
//!
//! Two routes, both read-only:
//!
//! * `GET /metrics` — Prometheus text format (`text/plain; version=0.0.4`)
//! * `GET /trace`   — Chrome `trace_event` JSON of the current span rings
//!
//! Anything else is a `404`; a request line we cannot parse is a `400`.
//! The handler never panics on malformed input — it answers (or drops the
//! connection) and moves on, so a fuzzer poking the scrape port cannot
//! take the serving process down. One request per connection (HTTP/1.0
//! semantics, `Connection: close`), which keeps the loop allocation-light
//! and means a stalled scraper holds a socket, not the sidecar.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use taco_obs::Obs;

/// Upper bound on the request head (request line + headers) we will read
/// before answering `400` — keeps a hostile client from streaming an
/// unbounded header block at the sidecar.
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// The running scrape listener: a bound socket plus its accept thread.
pub struct HttpSidecar {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl HttpSidecar {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts the accept loop.
    /// Errors surface only as the bind failing — after this returns `Ok`,
    /// the sidecar answers until [`shutdown`](HttpSidecar::shutdown).
    pub fn start(addr: &str, hub: Arc<Obs>) -> std::io::Result<HttpSidecar> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("taco-http".into())
            .spawn(move || accept_loop(listener, hub, stop2))?;
        Ok(HttpSidecar { addr, stop, handle: Some(handle) })
    }

    /// The bound address (useful when started on port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread. Idempotent.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: TcpListener, hub: Arc<Obs>, stop: Arc<AtomicBool>) {
    loop {
        let conn = listener.accept();
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok((stream, _)) = conn else { continue };
        // Bound both directions so a stalled peer cannot wedge the loop.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        serve_one(stream, &hub);
    }
}

/// Answers exactly one request on `stream`; all errors end the connection.
fn serve_one(stream: TcpStream, hub: &Arc<Obs>) {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    if reader.by_ref().take(MAX_HEAD_BYTES as u64).read_line(&mut line).is_err() {
        return; // unreadable / non-UTF-8 request line: just drop it
    }
    let mut stream = reader.into_inner();
    // A head that never reached its line terminator was truncated — by
    // EOF or by the head cap — and is refused, not served.
    let target = if line.ends_with('\n') { parse_request_line(&line) } else { None };
    let (status, content_type, body) = match target.as_deref() {
        Some("/metrics") => {
            ("200 OK", "text/plain; version=0.0.4; charset=utf-8", hub.snapshot().to_prometheus())
        }
        Some("/trace") => ("200 OK", "application/json", hub.tracer.dump().to_chrome_json()),
        Some(_) => ("404 Not Found", "text/plain; charset=utf-8", "not found\n".into()),
        None => ("400 Bad Request", "text/plain; charset=utf-8", "bad request\n".into()),
    };
    let head = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes()).and_then(|()| stream.write_all(body.as_bytes()));
}

/// Extracts the path from `GET <path> HTTP/1.x`; `None` on anything else
/// (which the caller turns into a `400`). The query string is dropped so
/// `GET /metrics?x=1` still scrapes.
fn parse_request_line(line: &str) -> Option<String> {
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    let version = parts.next()?;
    if method != "GET" || !version.starts_with("HTTP/") || parts.next().is_some() {
        return None;
    }
    let path = path.split('?').next().unwrap_or(path);
    if !path.starts_with('/') {
        return None;
    }
    Some(path.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_line_parsing() {
        assert_eq!(parse_request_line("GET /metrics HTTP/1.1\r\n").as_deref(), Some("/metrics"));
        assert_eq!(parse_request_line("GET /trace?x=1 HTTP/1.0\r\n").as_deref(), Some("/trace"));
        assert_eq!(parse_request_line("POST /metrics HTTP/1.1\r\n"), None);
        assert_eq!(parse_request_line("GET metrics HTTP/1.1\r\n"), None);
        assert_eq!(parse_request_line("GARBAGE\r\n"), None);
        assert_eq!(parse_request_line("\r\n"), None);
    }
}
