//! The TCP transport: a thread-per-connection acceptor over `std::net`
//! with length-prefixed CRC-checked frames, a connection limit, and
//! graceful shutdown.
//!
//! Connection lifecycle:
//!
//! 1. **handshake** — the client sends `b"TSRV"` + version `u16 LE`; the
//!    server echoes the same six bytes. Anything else closes the socket
//!    (a stray peer never reaches the frame loop);
//! 2. **frames** — each request is one [`taco_store::frame`] frame
//!    (`len uvarint · crc32 u32 · payload`), answered by one response
//!    frame. Declared lengths are bounded before allocation
//!    ([`ServerOptions::max_frame`]); a checksum mismatch or malformed
//!    payload gets an error *reply* where the stream is still in sync
//!    (the frame parsed; its content didn't) and otherwise closes the
//!    connection — corrupt framing means the byte stream cannot be
//!    trusted to re-synchronize;
//! 3. **teardown** — when the connection ends (EOF, error, or server
//!    shutdown), every session it opened is closed, so dropped clients
//!    never leak sessions.
//!
//! Over the limit, a new connection is still handshaken and told
//! [`ServiceError::Busy`] in a well-formed error frame, then closed —
//! clients get a typed error instead of a hang or a reset.
//!
//! [`Server::shutdown`] stops the acceptor (unblocking it with a
//! loopback connect), shuts down every live socket (which pops the
//! per-connection threads out of their blocking reads), and joins them.

use crate::protocol::{Request, Response};
use crate::registry::Registry;
use crate::ServiceError;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use taco_store::{read_frame, write_frame, StoreError, DEFAULT_MAX_FRAME};

/// Leading handshake magic.
pub const HANDSHAKE_MAGIC: [u8; 4] = *b"TSRV";
/// Current wire protocol version. Version 2 widened the `Stats` reply
/// with degradation and deadline counters; servers still accept v1
/// clients (the handshake rejects only *newer* peers).
pub const WIRE_VERSION: u16 = 2;

/// Tuning for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Concurrent connections served; the next one is told
    /// [`ServiceError::Busy`] and closed.
    pub max_connections: usize,
    /// Per-frame payload bound, enforced before allocation.
    pub max_frame: u64,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions { max_connections: 64, max_frame: DEFAULT_MAX_FRAME }
    }
}

/// Writes the six handshake bytes.
pub(crate) fn write_handshake(stream: &mut TcpStream) -> std::io::Result<()> {
    let mut hello = [0u8; 6];
    hello[..4].copy_from_slice(&HANDSHAKE_MAGIC);
    hello[4..].copy_from_slice(&WIRE_VERSION.to_le_bytes());
    stream.write_all(&hello)
}

/// Reads and validates the six handshake bytes.
pub(crate) fn read_handshake(stream: &mut TcpStream) -> Result<(), ServiceError> {
    let mut hello = [0u8; 6];
    stream.read_exact(&mut hello)?;
    if hello[..4] != HANDSHAKE_MAGIC {
        return Err(ServiceError::Wire(StoreError::BadMagic));
    }
    let version = u16::from_le_bytes([hello[4], hello[5]]);
    if version > WIRE_VERSION {
        return Err(ServiceError::Wire(StoreError::UnsupportedVersion(version)));
    }
    Ok(())
}

/// State shared by the acceptor and every connection thread.
struct ServerShared {
    registry: Arc<Registry>,
    opts: ServerOptions,
    stopping: AtomicBool,
    active: AtomicUsize,
    /// Live sockets by connection id, so shutdown can interrupt their
    /// blocking reads.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// A running TCP server. Dropping it without [`Server::shutdown`] leaves
/// the acceptor thread running; call `shutdown` for a clean stop.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections against `registry`.
    pub fn start<A: ToSocketAddrs>(
        registry: Arc<Registry>,
        addr: A,
        opts: ServerOptions,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            registry,
            opts,
            stopping: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            handles: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name(format!("taco-accept-{}", addr.port()))
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(Server { addr, shared, acceptor: Some(acceptor) })
    }

    /// The bound address (resolves an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// Graceful stop: no new connections, live sockets shut down, every
    /// connection thread joined. The registry is left running (it may be
    /// shared with in-process clients); shut it down separately.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Severs every live connection while the acceptor keeps serving —
    /// a failover drill. Each dropped connection's sessions are closed
    /// by its exiting thread, so reconnecting clients must re-`Open`;
    /// a retrying [`Client`](crate::Client) does both automatically.
    pub fn drop_connections(&self) {
        for (_, stream) in self.shared.conns.lock().iter() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    fn stop(&mut self) {
        if self.shared.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor's blocking `accept`.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // Pop every connection thread out of its blocking read.
        for (_, stream) in self.shared.conns.lock().iter() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let handles: Vec<_> = self.shared.handles.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shared.stopping.load(Ordering::SeqCst) {
                return;
            }
            // Transient accept failures (fd exhaustion, aborted
            // connections) retry with a pause — never a busy-spin that
            // competes with the threads whose exit would clear them.
            std::thread::sleep(std::time::Duration::from_millis(10));
            continue;
        };
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        // Reap finished connection threads so a long-lived server does
        // not accumulate join handles.
        {
            let mut handles = shared.handles.lock();
            let mut live = Vec::with_capacity(handles.len());
            for h in handles.drain(..) {
                if h.is_finished() {
                    let _ = h.join();
                } else {
                    live.push(h);
                }
            }
            *handles = live;
        }
        let conn_shared = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name("taco-conn".to_string())
            .spawn(move || serve_connection(stream, conn_shared));
        if let Ok(h) = spawned {
            shared.handles.lock().push(h);
        }
    }
}

/// Handshakes and serves one connection to completion. Every exit path —
/// clean EOF, frame corruption, peer reset, server shutdown — cleans up
/// the sessions this connection opened and its registration; malformed
/// input is answered or dropped, never propagated as a panic.
fn serve_connection(mut stream: TcpStream, shared: Arc<ServerShared>) {
    let (over_limit, active_now) = {
        let active = shared.active.fetch_add(1, Ordering::SeqCst);
        (active >= shared.opts.max_connections, active + 1)
    };
    shared.registry.note_connections(active_now as i64);
    let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
    let registered = match stream.try_clone() {
        Ok(clone) => {
            shared.conns.lock().insert(conn_id, clone);
            true
        }
        // Without a registered clone, shutdown could not interrupt this
        // connection's blocking reads — refuse it rather than risk a
        // thread `stop` cannot join.
        Err(_) => false,
    };
    // Re-check *after* registering: `stop` sets the flag and then sweeps
    // `conns`, so either the sweep sees our socket, or we see the flag —
    // a connection can never slip between the two and block forever.
    let stopping = shared.stopping.load(Ordering::SeqCst);

    let mut opened_tokens: Vec<u64> = Vec::new();
    // Handshake both ways; then either serve frames or report Busy.
    let handshaken = registered
        && !stopping
        && read_handshake(&mut stream).is_ok()
        && write_handshake(&mut stream).is_ok();
    if handshaken {
        if over_limit {
            shared.registry.note_busy_rejection();
            let _ = write_frame(&mut stream, &Response::Err(ServiceError::Busy).encode());
        } else {
            frame_loop(&mut stream, &shared, &mut opened_tokens);
        }
    }

    for token in opened_tokens {
        shared.registry.close_session(token);
    }
    shared.conns.lock().remove(&conn_id);
    let remaining = shared.active.fetch_sub(1, Ordering::SeqCst) - 1;
    shared.registry.note_connections(remaining as i64);
    let _ = stream.shutdown(Shutdown::Both);
}

fn frame_loop(stream: &mut TcpStream, shared: &ServerShared, opened: &mut Vec<u64>) {
    loop {
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        let payload = match read_frame(stream, shared.opts.max_frame) {
            Ok(p) => p,
            Err(e @ (StoreError::Malformed(_) | StoreError::ChecksumMismatch { .. })) => {
                // The stream's framing can no longer be trusted: report
                // (best effort) and close.
                let _ = write_frame(stream, &Response::Err(ServiceError::Wire(e)).encode());
                return;
            }
            // EOF / reset / mid-frame disconnect: the peer is gone.
            Err(_) => return,
        };
        let (wire_ctx, req) = match Request::decode_traced(&payload) {
            Ok(pair) => pair,
            Err(e) => {
                // The frame was intact (CRC passed) but its content is not
                // a request: the stream is still in sync — answer and
                // keep serving.
                if write_frame(stream, &Response::Err(ServiceError::Wire(e)).encode()).is_err() {
                    return;
                }
                continue;
            }
        };
        let closing = match &req {
            Request::Close { token } => Some(*token),
            _ => None,
        };
        let resp = shared.registry.execute_traced(req, wire_ctx, payload.len() as u64);
        if let Response::Opened { token, .. } = &resp {
            opened.push(*token);
        }
        if let Some(token) = closing {
            opened.retain(|t| *t != token);
        }
        if write_frame(stream, &resp.encode()).is_err() {
            return;
        }
    }
}
