//! The command protocol: plain-data [`Request`]/[`Response`] enums with a
//! compact binary encoding.
//!
//! The encoding reuses `taco_store`'s codec layer — LEB128 varints for
//! integers, length-prefixed UTF-8 for strings, the store's tagged value
//! and cell/range encodings — so the wire format inherits the on-disk
//! format's properties: compact, front-to-back decodable, and hardened
//! (string/list lengths are bounded before allocation, trailing bytes are
//! an error, unknown tags are typed failures, decoding never panics).
//!
//! One request or response is one frame payload ([`taco_store::frame`]);
//! framing (length prefix + CRC) is the transport's job, so the payload
//! codec here assumes an intact byte slice.

use crate::ServiceError;
use std::io::{Read, Write};
use taco_formula::Value;
use taco_grid::{Cell, Range};
use taco_obs::{
    GaugeValue, HistogramSnapshot, MetricValue, MetricsSnapshot, SlowSpan, SpanCat, TraceContext,
    TraceDump,
};
use taco_store::codec::{read_ivarint, write_ivarint};
use taco_store::codec::{read_string, read_uvarint, write_string, write_uvarint};
use taco_store::image::{read_cell, read_range, read_value, write_cell, write_range, write_value};
use taco_store::StoreError;

/// Upper bound for any string on the wire (sheet names, formula sources,
/// error messages).
pub const MAX_WIRE_STRING: u64 = 1 << 20;

/// Upper bound for any metric/span list in a [`Response::Metrics`]
/// payload. Checked before any allocation: an oversized declared length
/// is a typed error, not an attempted `Vec` reservation.
pub const MAX_METRICS_ENTRIES: u64 = 1 << 16;

/// One client command. Every variant after [`Request::Open`] carries the
/// session token `Open` returned.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Starts a session against a named workbook.
    Open {
        /// The workbook's registry name (case-insensitive).
        workbook: String,
        /// The workbook's auth token, when it requires one.
        auth: Option<String>,
        /// Restrict the session to these sheets (names); `None` = all.
        scope: Option<Vec<String>>,
    },
    /// Ends a session.
    Close {
        /// The session token.
        token: u64,
    },
    /// Sets a pure value.
    SetValue {
        /// The session token.
        token: u64,
        /// Target sheet name.
        sheet: String,
        /// Target cell.
        cell: Cell,
        /// The new value.
        value: Value,
    },
    /// Sets a formula (leading `=` optional).
    SetFormula {
        /// The session token.
        token: u64,
        /// Target sheet name.
        sheet: String,
        /// Target cell.
        cell: Cell,
        /// Formula source text.
        src: String,
    },
    /// Autofills the formula at `src` over `targets`.
    Autofill {
        /// The session token.
        token: u64,
        /// Target sheet name.
        sheet: String,
        /// The source formula cell.
        src: Cell,
        /// The fill targets.
        targets: Range,
    },
    /// Clears every cell in `range`.
    ClearRange {
        /// The session token.
        token: u64,
        /// Target sheet name.
        sheet: String,
        /// The cleared range.
        range: Range,
    },
    /// Reads one cell's value (snapshot read).
    Get {
        /// The session token.
        token: u64,
        /// Target sheet name.
        sheet: String,
        /// The cell to read.
        cell: Cell,
    },
    /// Reads every non-empty cell in `range` (snapshot read).
    GetRange {
        /// The session token.
        token: u64,
        /// Target sheet name.
        sheet: String,
        /// The range to read.
        range: Range,
    },
    /// All transitive dependents of `sheet!range`, across sheets.
    Dependents {
        /// The session token.
        token: u64,
        /// Probe sheet name.
        sheet: String,
        /// Probe range.
        range: Range,
    },
    /// All transitive precedents of `sheet!range`, across sheets.
    Precedents {
        /// The session token.
        token: u64,
        /// Probe sheet name.
        sheet: String,
        /// Probe range.
        range: Range,
    },
    /// Number of cells awaiting recalculation (snapshot read).
    DirtyCount {
        /// The session token.
        token: u64,
    },
    /// Forces a recalculation (also the write-queue barrier: it runs
    /// after every previously queued write).
    Recalc {
        /// The session token.
        token: u64,
    },
    /// Folds the workbook's WAL into a fresh snapshot (persistent
    /// workbooks only).
    Save {
        /// The session token.
        token: u64,
    },
    /// Service counters and workbook totals.
    Stats {
        /// The session token.
        token: u64,
    },
    /// Demand-driven recalculation: evaluates only the transitive dirty
    /// precedents of `sheet!range`, leaving the rest lazily dirty. A
    /// write-queue barrier like [`Request::Recalc`].
    RecalcRange {
        /// The session token.
        token: u64,
        /// Viewport sheet name.
        sheet: String,
        /// The viewport.
        range: Range,
    },
    /// Reads every non-empty cell in `range` after a demand-driven
    /// recalculation of that viewport — a "fresh" read, unlike the
    /// snapshot read [`Request::GetRange`].
    GetRangeFresh {
        /// The session token.
        token: u64,
        /// Viewport sheet name.
        sheet: String,
        /// The viewport.
        range: Range,
    },
    /// Inserts `n` rows before row `at` — a workbook-wide structural
    /// edit: references to the sheet from *other* sheets are rewritten
    /// too (full-range deletions become `#REF!`).
    InsertRows {
        /// The session token.
        token: u64,
        /// The edited sheet's name.
        sheet: String,
        /// First shifted row.
        at: u32,
        /// Rows inserted.
        n: u32,
    },
    /// Deletes the rows `[at, at + n)`; see [`Request::InsertRows`].
    DeleteRows {
        /// The session token.
        token: u64,
        /// The edited sheet's name.
        sheet: String,
        /// First deleted row.
        at: u32,
        /// Rows deleted.
        n: u32,
    },
    /// Inserts `n` columns before column `at`; see
    /// [`Request::InsertRows`].
    InsertCols {
        /// The session token.
        token: u64,
        /// The edited sheet's name.
        sheet: String,
        /// First shifted column.
        at: u32,
        /// Columns inserted.
        n: u32,
    },
    /// Deletes the columns `[at, at + n)`; see [`Request::InsertRows`].
    DeleteCols {
        /// The session token.
        token: u64,
        /// The edited sheet's name.
        sheet: String,
        /// First deleted column.
        at: u32,
        /// Columns deleted.
        n: u32,
    },
    /// A full metrics snapshot from the service's observability hub
    /// (counters, gauges, histogram quantiles, slow spans). A typed
    /// `BadRequest` when the service runs with observability disabled.
    Metrics {
        /// The session token.
        token: u64,
    },
    /// A bounded span-tree snapshot from the service's tracer: the
    /// recent-span ring plus the slow-request log (requests over the
    /// slow threshold keep their full subtree). A typed `BadRequest`
    /// when the service runs with observability disabled.
    TraceDump {
        /// The session token.
        token: u64,
    },
}

/// One server reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Session started.
    Opened {
        /// The session token to carry in subsequent requests.
        token: u64,
        /// The sheets visible to the session (scope applied).
        sheets: Vec<String>,
        /// Snapshot epoch at open time.
        epoch: u64,
    },
    /// Session ended.
    Closed,
    /// A write was applied (and recalculated) by the workbook's writer.
    Applied {
        /// Snapshot epoch after the write's batch was published.
        epoch: u64,
        /// Dirty ranges routed for the batch this write rode in.
        dirty: u64,
    },
    /// A cell value.
    Value(
        /// The value (Empty for never-written cells).
        Value,
    ),
    /// The non-empty cells of a range, sorted by (row, col).
    Cells(
        /// `(cell, value)` pairs.
        Vec<(Cell, Value)>,
    ),
    /// Query results as `(sheet name, range)` pairs.
    Ranges(
        /// The ranges, sorted by sheet then position.
        Vec<(String, Range)>,
    ),
    /// A counter (dirty count).
    Count(
        /// The count.
        u64,
    ),
    /// A recalculation ran.
    Recalced {
        /// Formula cells evaluated.
        evaluated: u64,
        /// Snapshot epoch after publication.
        epoch: u64,
    },
    /// The workbook was folded to its snapshot file.
    Saved {
        /// WAL records remaining after the fold (0 unless compaction is
        /// disabled).
        wal_records: u64,
    },
    /// Service counters.
    Stats(
        /// The counters.
        ServiceStats,
    ),
    /// A metrics snapshot ([`Request::Metrics`]).
    Metrics(
        /// The hub snapshot: counters, gauges, frozen histograms, and
        /// the slow-span log.
        Box<MetricsSnapshot>,
    ),
    /// A span-tree snapshot ([`Request::TraceDump`]).
    Traces(
        /// The recent-span ring plus the slow-request log, oldest first.
        Box<TraceDump>,
    ),
    /// The request failed.
    Err(
        /// The typed failure.
        ServiceError,
    ),
}

/// Counters returned by [`Request::Stats`]: a snapshot-consistent view of
/// one workbook plus the monotone service counters its writer maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Snapshot epoch (bumps once per published batch/recalc).
    pub epoch: u64,
    /// Sheets in the workbook.
    pub sheets: u64,
    /// Non-empty cells across all sheets (as of the snapshot).
    pub cells: u64,
    /// Cells awaiting recalculation (as of the snapshot).
    pub dirty: u64,
    /// Compressed formula-graph edges across all sheets.
    pub graph_edges: u64,
    /// Inter-sheet edges.
    pub cross_edges: u64,
    /// Edits applied since the workbook was registered.
    pub edits: u64,
    /// Write batches applied (= dirty-propagation passes for edits).
    pub batches: u64,
    /// Recalculations run.
    pub recalcs: u64,
    /// Edits that rode in a batch with at least one other edit.
    pub coalesced: u64,
    /// Sessions currently open across the whole registry.
    pub sessions: u64,
    /// Connections rejected with [`ServiceError::Busy`] at accept time.
    pub busy_rejected: u64,
    /// Opens rejected with [`ServiceError::AuthFailed`].
    pub auth_failures: u64,
    /// Requests rejected with [`ServiceError::OutOfScope`].
    pub scope_denials: u64,
    /// 1 when this workbook is currently degraded (read-only after a
    /// storage fault; heals on a successful `Save`), else 0.
    pub degraded: u64,
    /// Requests answered with [`ServiceError::DeadlineExceeded`]
    /// (registry-wide).
    pub deadline_expired: u64,
}

// ---- encoding -----------------------------------------------------------

const REQ_OPEN: u8 = 0;
const REQ_CLOSE: u8 = 1;
const REQ_SET_VALUE: u8 = 2;
const REQ_SET_FORMULA: u8 = 3;
const REQ_AUTOFILL: u8 = 4;
const REQ_CLEAR_RANGE: u8 = 5;
const REQ_GET: u8 = 6;
const REQ_GET_RANGE: u8 = 7;
const REQ_DEPENDENTS: u8 = 8;
const REQ_PRECEDENTS: u8 = 9;
const REQ_DIRTY_COUNT: u8 = 10;
const REQ_RECALC: u8 = 11;
const REQ_SAVE: u8 = 12;
const REQ_STATS: u8 = 13;
const REQ_RECALC_RANGE: u8 = 14;
const REQ_GET_RANGE_FRESH: u8 = 15;
const REQ_INSERT_ROWS: u8 = 16;
const REQ_DELETE_ROWS: u8 = 17;
const REQ_INSERT_COLS: u8 = 18;
const REQ_DELETE_COLS: u8 = 19;
const REQ_METRICS: u8 = 20;
const REQ_TRACE_DUMP: u8 = 21;
/// The traced-request wrapper tag: `22 · trace_hi · trace_lo · parent
/// span id (u64 LE each) · inner request bytes`. Not a request of its
/// own — a frame extension that propagates the client's trace context
/// so server-side spans parent under the caller's span tree.
const REQ_TRACED: u8 = 22;

/// Operation names, indexed by request tag (span labels).
pub const OP_NAMES: [&str; 22] = [
    "open",
    "close",
    "set_value",
    "set_formula",
    "autofill",
    "clear_range",
    "get",
    "get_range",
    "dependents",
    "precedents",
    "dirty_count",
    "recalc",
    "save",
    "stats",
    "recalc_range",
    "get_range_fresh",
    "insert_rows",
    "delete_rows",
    "insert_cols",
    "delete_cols",
    "metrics",
    "trace_dump",
];

/// Pre-rendered `op="..."` label strings, indexed by request tag
/// (per-operation latency histogram labels — rendered once so request
/// timing never formats).
pub const OP_LABELS: [&str; 22] = [
    "op=\"open\"",
    "op=\"close\"",
    "op=\"set_value\"",
    "op=\"set_formula\"",
    "op=\"autofill\"",
    "op=\"clear_range\"",
    "op=\"get\"",
    "op=\"get_range\"",
    "op=\"dependents\"",
    "op=\"precedents\"",
    "op=\"dirty_count\"",
    "op=\"recalc\"",
    "op=\"save\"",
    "op=\"stats\"",
    "op=\"recalc_range\"",
    "op=\"get_range_fresh\"",
    "op=\"insert_rows\"",
    "op=\"delete_rows\"",
    "op=\"insert_cols\"",
    "op=\"delete_cols\"",
    "op=\"metrics\"",
    "op=\"trace_dump\"",
];

const RESP_OPENED: u8 = 0;
const RESP_CLOSED: u8 = 1;
const RESP_APPLIED: u8 = 2;
const RESP_VALUE: u8 = 3;
const RESP_CELLS: u8 = 4;
const RESP_RANGES: u8 = 5;
const RESP_COUNT: u8 = 6;
const RESP_RECALCED: u8 = 7;
const RESP_SAVED: u8 = 8;
const RESP_STATS: u8 = 9;
const RESP_ERR: u8 = 10;
const RESP_METRICS: u8 = 11;
const RESP_TRACES: u8 = 12;

fn write_opt_string<W: Write>(w: &mut W, s: &Option<String>) -> Result<(), StoreError> {
    match s {
        None => {
            w.write_all(&[0])?;
            Ok(())
        }
        Some(s) => {
            w.write_all(&[1])?;
            write_string(w, s)
        }
    }
}

fn read_opt_string<R: Read>(r: &mut R) -> Result<Option<String>, StoreError> {
    match read_flag(r)? {
        false => Ok(None),
        true => Ok(Some(read_string(r, MAX_WIRE_STRING)?)),
    }
}

fn read_flag<R: Read>(r: &mut R) -> Result<bool, StoreError> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    match b[0] {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(StoreError::Malformed("flag byte out of range")),
    }
}

fn read_wire_string<R: Read>(r: &mut R) -> Result<String, StoreError> {
    read_string(r, MAX_WIRE_STRING)
}

fn read_grid_index<R: Read>(r: &mut R) -> Result<u32, StoreError> {
    let v = read_uvarint(r)?;
    u32::try_from(v).map_err(|_| StoreError::Malformed("grid index out of range"))
}

/// Checks a declared list length against `MAX_METRICS_ENTRIES` *before*
/// any allocation happens on its behalf.
fn checked_len(n: u64) -> Result<usize, StoreError> {
    if n > MAX_METRICS_ENTRIES {
        return Err(StoreError::Malformed("metrics list length out of range"));
    }
    Ok(n as usize)
}

/// Trace/span ids are full-entropy 64-bit values, so they travel as
/// fixed 8-byte little-endian words instead of varints (which would
/// cost 10 bytes for a random id).
fn write_u64_le<W: Write>(w: &mut W, v: u64) -> Result<(), StoreError> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

fn read_u64_le<R: Read>(r: &mut R) -> Result<u64, StoreError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn write_span<W: Write>(w: &mut W, sp: &SlowSpan) -> Result<(), StoreError> {
    write_string(w, &sp.name)?;
    w.write_all(&[sp.cat as u8])?;
    write_u64_le(w, sp.trace_hi)?;
    write_u64_le(w, sp.trace_lo)?;
    write_u64_le(w, sp.span_id)?;
    write_u64_le(w, sp.parent_id)?;
    write_uvarint(w, sp.start_ns)?;
    write_uvarint(w, sp.dur_ns)?;
    write_uvarint(w, sp.a)?;
    write_uvarint(w, sp.b)?;
    Ok(())
}

fn read_span<R: Read>(r: &mut R) -> Result<SlowSpan, StoreError> {
    let name = read_wire_string(r)?;
    let mut cat = [0u8; 1];
    r.read_exact(&mut cat)?;
    let cat =
        SpanCat::from_u8(cat[0]).ok_or(StoreError::Malformed("span category out of range"))?;
    Ok(SlowSpan {
        name,
        cat,
        trace_hi: read_u64_le(r)?,
        trace_lo: read_u64_le(r)?,
        span_id: read_u64_le(r)?,
        parent_id: read_u64_le(r)?,
        start_ns: read_uvarint(r)?,
        dur_ns: read_uvarint(r)?,
        a: read_uvarint(r)?,
        b: read_uvarint(r)?,
    })
}

fn write_spans<W: Write>(w: &mut W, spans: &[SlowSpan]) -> Result<(), StoreError> {
    write_uvarint(w, spans.len() as u64)?;
    for sp in spans {
        write_span(w, sp)?;
    }
    Ok(())
}

fn read_spans<R: Read>(r: &mut R) -> Result<Vec<SlowSpan>, StoreError> {
    let n = checked_len(read_uvarint(r)?)?;
    let mut spans = Vec::with_capacity(n);
    for _ in 0..n {
        spans.push(read_span(r)?);
    }
    Ok(spans)
}

fn write_trace_dump<W: Write>(w: &mut W, dump: &TraceDump) -> Result<(), StoreError> {
    write_spans(w, &dump.recent)?;
    write_spans(w, &dump.slow)
}

fn read_trace_dump<R: Read>(r: &mut R) -> Result<TraceDump, StoreError> {
    Ok(TraceDump { recent: read_spans(r)?, slow: read_spans(r)? })
}

fn write_metrics<W: Write>(w: &mut W, snap: &MetricsSnapshot) -> Result<(), StoreError> {
    write_uvarint(w, snap.counters.len() as u64)?;
    for c in &snap.counters {
        write_string(w, &c.name)?;
        write_string(w, &c.labels)?;
        write_uvarint(w, c.value)?;
    }
    write_uvarint(w, snap.gauges.len() as u64)?;
    for g in &snap.gauges {
        write_string(w, &g.name)?;
        write_string(w, &g.labels)?;
        write_ivarint(w, g.value)?;
    }
    write_uvarint(w, snap.histograms.len() as u64)?;
    for h in &snap.histograms {
        write_string(w, &h.name)?;
        write_string(w, &h.labels)?;
        write_uvarint(w, h.count)?;
        write_uvarint(w, h.sum)?;
        write_uvarint(w, h.buckets.len() as u64)?;
        for &(b, n) in &h.buckets {
            w.write_all(&[b])?;
            write_uvarint(w, n)?;
        }
        write_uvarint(w, h.p50)?;
        write_uvarint(w, h.p90)?;
        write_uvarint(w, h.p99)?;
    }
    write_spans(w, &snap.slow_spans)?;
    Ok(())
}

fn read_metrics<R: Read>(r: &mut R) -> Result<MetricsSnapshot, StoreError> {
    let mut snap = MetricsSnapshot::default();
    let n = checked_len(read_uvarint(r)?)?;
    snap.counters.reserve_exact(n);
    for _ in 0..n {
        snap.counters.push(MetricValue {
            name: read_wire_string(r)?,
            labels: read_wire_string(r)?,
            value: read_uvarint(r)?,
        });
    }
    let n = checked_len(read_uvarint(r)?)?;
    snap.gauges.reserve_exact(n);
    for _ in 0..n {
        snap.gauges.push(GaugeValue {
            name: read_wire_string(r)?,
            labels: read_wire_string(r)?,
            value: read_ivarint(r)?,
        });
    }
    let n = checked_len(read_uvarint(r)?)?;
    snap.histograms.reserve_exact(n);
    for _ in 0..n {
        let name = read_wire_string(r)?;
        let labels = read_wire_string(r)?;
        let count = read_uvarint(r)?;
        let sum = read_uvarint(r)?;
        let nb = read_uvarint(r)?;
        // A log₂ histogram has at most 64 buckets; anything larger is
        // malformed (and rejected before the Vec reserves).
        if nb > taco_obs::HIST_BUCKETS as u64 {
            return Err(StoreError::Malformed("histogram bucket count out of range"));
        }
        let mut buckets = Vec::with_capacity(nb as usize);
        for _ in 0..nb {
            let mut b = [0u8; 1];
            r.read_exact(&mut b)?;
            buckets.push((b[0], read_uvarint(r)?));
        }
        let (p50, p90, p99) = (read_uvarint(r)?, read_uvarint(r)?, read_uvarint(r)?);
        snap.histograms.push(HistogramSnapshot {
            name,
            labels,
            count,
            sum,
            buckets,
            p50,
            p90,
            p99,
        });
    }
    snap.slow_spans = read_spans(r)?;
    Ok(snap)
}

impl Request {
    /// The request's wire tag (also the index into
    /// [`OP_LABELS`]).
    pub fn tag(&self) -> u8 {
        match self {
            Request::Open { .. } => REQ_OPEN,
            Request::Close { .. } => REQ_CLOSE,
            Request::SetValue { .. } => REQ_SET_VALUE,
            Request::SetFormula { .. } => REQ_SET_FORMULA,
            Request::Autofill { .. } => REQ_AUTOFILL,
            Request::ClearRange { .. } => REQ_CLEAR_RANGE,
            Request::Get { .. } => REQ_GET,
            Request::GetRange { .. } => REQ_GET_RANGE,
            Request::Dependents { .. } => REQ_DEPENDENTS,
            Request::Precedents { .. } => REQ_PRECEDENTS,
            Request::DirtyCount { .. } => REQ_DIRTY_COUNT,
            Request::Recalc { .. } => REQ_RECALC,
            Request::Save { .. } => REQ_SAVE,
            Request::Stats { .. } => REQ_STATS,
            Request::RecalcRange { .. } => REQ_RECALC_RANGE,
            Request::GetRangeFresh { .. } => REQ_GET_RANGE_FRESH,
            Request::InsertRows { .. } => REQ_INSERT_ROWS,
            Request::DeleteRows { .. } => REQ_DELETE_ROWS,
            Request::InsertCols { .. } => REQ_INSERT_COLS,
            Request::DeleteCols { .. } => REQ_DELETE_COLS,
            Request::Metrics { .. } => REQ_METRICS,
            Request::TraceDump { .. } => REQ_TRACE_DUMP,
        }
    }

    /// The request's operation name, for span labels.
    pub fn op_name(&self) -> &'static str {
        OP_NAMES[self.tag() as usize]
    }

    /// Encodes the request as one frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let infallible: Result<(), StoreError> = (|| {
            let w = &mut out;
            match self {
                Request::Open { workbook, auth, scope } => {
                    w.push(REQ_OPEN);
                    write_string(w, workbook)?;
                    write_opt_string(w, auth)?;
                    match scope {
                        None => w.push(0),
                        Some(sheets) => {
                            w.push(1);
                            write_uvarint(w, sheets.len() as u64)?;
                            for s in sheets {
                                write_string(w, s)?;
                            }
                        }
                    }
                }
                Request::Close { token } => {
                    w.push(REQ_CLOSE);
                    write_uvarint(w, *token)?;
                }
                Request::SetValue { token, sheet, cell, value } => {
                    w.push(REQ_SET_VALUE);
                    write_uvarint(w, *token)?;
                    write_string(w, sheet)?;
                    write_cell(w, *cell)?;
                    write_value(w, value)?;
                }
                Request::SetFormula { token, sheet, cell, src } => {
                    w.push(REQ_SET_FORMULA);
                    write_uvarint(w, *token)?;
                    write_string(w, sheet)?;
                    write_cell(w, *cell)?;
                    write_string(w, src)?;
                }
                Request::Autofill { token, sheet, src, targets } => {
                    w.push(REQ_AUTOFILL);
                    write_uvarint(w, *token)?;
                    write_string(w, sheet)?;
                    write_cell(w, *src)?;
                    write_range(w, *targets)?;
                }
                Request::ClearRange { token, sheet, range } => {
                    w.push(REQ_CLEAR_RANGE);
                    write_uvarint(w, *token)?;
                    write_string(w, sheet)?;
                    write_range(w, *range)?;
                }
                Request::Get { token, sheet, cell } => {
                    w.push(REQ_GET);
                    write_uvarint(w, *token)?;
                    write_string(w, sheet)?;
                    write_cell(w, *cell)?;
                }
                Request::GetRange { token, sheet, range } => {
                    w.push(REQ_GET_RANGE);
                    write_uvarint(w, *token)?;
                    write_string(w, sheet)?;
                    write_range(w, *range)?;
                }
                Request::Dependents { token, sheet, range } => {
                    w.push(REQ_DEPENDENTS);
                    write_uvarint(w, *token)?;
                    write_string(w, sheet)?;
                    write_range(w, *range)?;
                }
                Request::Precedents { token, sheet, range } => {
                    w.push(REQ_PRECEDENTS);
                    write_uvarint(w, *token)?;
                    write_string(w, sheet)?;
                    write_range(w, *range)?;
                }
                Request::DirtyCount { token } => {
                    w.push(REQ_DIRTY_COUNT);
                    write_uvarint(w, *token)?;
                }
                Request::Recalc { token } => {
                    w.push(REQ_RECALC);
                    write_uvarint(w, *token)?;
                }
                Request::Save { token } => {
                    w.push(REQ_SAVE);
                    write_uvarint(w, *token)?;
                }
                Request::Stats { token } => {
                    w.push(REQ_STATS);
                    write_uvarint(w, *token)?;
                }
                Request::RecalcRange { token, sheet, range } => {
                    w.push(REQ_RECALC_RANGE);
                    write_uvarint(w, *token)?;
                    write_string(w, sheet)?;
                    write_range(w, *range)?;
                }
                Request::GetRangeFresh { token, sheet, range } => {
                    w.push(REQ_GET_RANGE_FRESH);
                    write_uvarint(w, *token)?;
                    write_string(w, sheet)?;
                    write_range(w, *range)?;
                }
                Request::InsertRows { token, sheet, at, n }
                | Request::DeleteRows { token, sheet, at, n }
                | Request::InsertCols { token, sheet, at, n }
                | Request::DeleteCols { token, sheet, at, n } => {
                    w.push(match self {
                        Request::InsertRows { .. } => REQ_INSERT_ROWS,
                        Request::DeleteRows { .. } => REQ_DELETE_ROWS,
                        Request::InsertCols { .. } => REQ_INSERT_COLS,
                        _ => REQ_DELETE_COLS,
                    });
                    write_uvarint(w, *token)?;
                    write_string(w, sheet)?;
                    write_uvarint(w, u64::from(*at))?;
                    write_uvarint(w, u64::from(*n))?;
                }
                Request::Metrics { token } => {
                    w.push(REQ_METRICS);
                    write_uvarint(w, *token)?;
                }
                Request::TraceDump { token } => {
                    w.push(REQ_TRACE_DUMP);
                    write_uvarint(w, *token)?;
                }
            }
            Ok(())
        })();
        debug_assert!(infallible.is_ok(), "Vec sinks cannot fail");
        out
    }

    /// Encodes the request wrapped in a traced-request extension
    /// carrying the caller's trace context: the server parents its
    /// request span (and everything beneath it) under `ctx`.
    pub fn encode_traced(&self, ctx: TraceContext) -> Vec<u8> {
        let inner = self.encode();
        let mut out = Vec::with_capacity(inner.len() + 25);
        out.push(REQ_TRACED);
        out.extend_from_slice(&ctx.trace_hi.to_le_bytes());
        out.extend_from_slice(&ctx.trace_lo.to_le_bytes());
        out.extend_from_slice(&ctx.span_id.to_le_bytes());
        out.extend_from_slice(&inner);
        out
    }

    /// Decodes one frame payload; trailing bytes are an error. A traced
    /// wrapper is accepted and its context discarded — use
    /// [`Request::decode_traced`] to observe it.
    pub fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        Self::decode_traced(bytes).map(|(_, req)| req)
    }

    /// Decodes one frame payload, surfacing the trace context when the
    /// request arrived in a traced wrapper. The carried `span_id` is the
    /// *parent* under which server-side spans should hang.
    pub fn decode_traced(mut bytes: &[u8]) -> Result<(Option<TraceContext>, Self), StoreError> {
        let r = &mut bytes;
        let mut op = [0u8; 1];
        r.read_exact(&mut op)?;
        let ctx = if op[0] == REQ_TRACED {
            let (trace_hi, trace_lo) = (read_u64_le(r)?, read_u64_le(r)?);
            let parent = read_u64_le(r)?;
            if trace_hi == 0 && trace_lo == 0 {
                return Err(StoreError::Malformed("traced wrapper with zero trace id"));
            }
            r.read_exact(&mut op)?;
            if op[0] == REQ_TRACED {
                return Err(StoreError::Malformed("nested traced wrapper"));
            }
            Some(TraceContext { trace_hi, trace_lo, span_id: parent, parent_id: 0 })
        } else {
            None
        };
        let req = match op[0] {
            REQ_OPEN => {
                let workbook = read_wire_string(r)?;
                let auth = read_opt_string(r)?;
                let scope = match read_flag(r)? {
                    false => None,
                    true => {
                        let n = read_uvarint(r)?;
                        let mut sheets = Vec::new();
                        for _ in 0..n {
                            sheets.push(read_wire_string(r)?);
                        }
                        Some(sheets)
                    }
                };
                Request::Open { workbook, auth, scope }
            }
            REQ_CLOSE => Request::Close { token: read_uvarint(r)? },
            REQ_SET_VALUE => Request::SetValue {
                token: read_uvarint(r)?,
                sheet: read_wire_string(r)?,
                cell: read_cell(r)?,
                value: read_value(r)?,
            },
            REQ_SET_FORMULA => Request::SetFormula {
                token: read_uvarint(r)?,
                sheet: read_wire_string(r)?,
                cell: read_cell(r)?,
                src: read_wire_string(r)?,
            },
            REQ_AUTOFILL => Request::Autofill {
                token: read_uvarint(r)?,
                sheet: read_wire_string(r)?,
                src: read_cell(r)?,
                targets: read_range(r)?,
            },
            REQ_CLEAR_RANGE => Request::ClearRange {
                token: read_uvarint(r)?,
                sheet: read_wire_string(r)?,
                range: read_range(r)?,
            },
            REQ_GET => Request::Get {
                token: read_uvarint(r)?,
                sheet: read_wire_string(r)?,
                cell: read_cell(r)?,
            },
            REQ_GET_RANGE => Request::GetRange {
                token: read_uvarint(r)?,
                sheet: read_wire_string(r)?,
                range: read_range(r)?,
            },
            REQ_DEPENDENTS => Request::Dependents {
                token: read_uvarint(r)?,
                sheet: read_wire_string(r)?,
                range: read_range(r)?,
            },
            REQ_PRECEDENTS => Request::Precedents {
                token: read_uvarint(r)?,
                sheet: read_wire_string(r)?,
                range: read_range(r)?,
            },
            REQ_DIRTY_COUNT => Request::DirtyCount { token: read_uvarint(r)? },
            REQ_RECALC => Request::Recalc { token: read_uvarint(r)? },
            REQ_SAVE => Request::Save { token: read_uvarint(r)? },
            REQ_STATS => Request::Stats { token: read_uvarint(r)? },
            REQ_RECALC_RANGE => Request::RecalcRange {
                token: read_uvarint(r)?,
                sheet: read_wire_string(r)?,
                range: read_range(r)?,
            },
            REQ_GET_RANGE_FRESH => Request::GetRangeFresh {
                token: read_uvarint(r)?,
                sheet: read_wire_string(r)?,
                range: read_range(r)?,
            },
            op @ (REQ_INSERT_ROWS | REQ_DELETE_ROWS | REQ_INSERT_COLS | REQ_DELETE_COLS) => {
                let token = read_uvarint(r)?;
                let sheet = read_wire_string(r)?;
                let at = read_grid_index(r)?;
                let n = read_grid_index(r)?;
                match op {
                    REQ_INSERT_ROWS => Request::InsertRows { token, sheet, at, n },
                    REQ_DELETE_ROWS => Request::DeleteRows { token, sheet, at, n },
                    REQ_INSERT_COLS => Request::InsertCols { token, sheet, at, n },
                    _ => Request::DeleteCols { token, sheet, at, n },
                }
            }
            REQ_METRICS => Request::Metrics { token: read_uvarint(r)? },
            REQ_TRACE_DUMP => Request::TraceDump { token: read_uvarint(r)? },
            _ => return Err(StoreError::Malformed("unknown request op")),
        };
        if !r.is_empty() {
            return Err(StoreError::Malformed("trailing bytes in request"));
        }
        Ok((ctx, req))
    }
}

impl Response {
    /// Encodes the response as one frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let infallible: Result<(), StoreError> = (|| {
            let w = &mut out;
            match self {
                Response::Opened { token, sheets, epoch } => {
                    w.push(RESP_OPENED);
                    write_uvarint(w, *token)?;
                    write_uvarint(w, *epoch)?;
                    write_uvarint(w, sheets.len() as u64)?;
                    for s in sheets {
                        write_string(w, s)?;
                    }
                }
                Response::Closed => w.push(RESP_CLOSED),
                Response::Applied { epoch, dirty } => {
                    w.push(RESP_APPLIED);
                    write_uvarint(w, *epoch)?;
                    write_uvarint(w, *dirty)?;
                }
                Response::Value(v) => {
                    w.push(RESP_VALUE);
                    write_value(w, v)?;
                }
                Response::Cells(cells) => {
                    w.push(RESP_CELLS);
                    write_uvarint(w, cells.len() as u64)?;
                    for (c, v) in cells {
                        write_cell(w, *c)?;
                        write_value(w, v)?;
                    }
                }
                Response::Ranges(ranges) => {
                    w.push(RESP_RANGES);
                    write_uvarint(w, ranges.len() as u64)?;
                    for (sheet, range) in ranges {
                        write_string(w, sheet)?;
                        write_range(w, *range)?;
                    }
                }
                Response::Count(n) => {
                    w.push(RESP_COUNT);
                    write_uvarint(w, *n)?;
                }
                Response::Recalced { evaluated, epoch } => {
                    w.push(RESP_RECALCED);
                    write_uvarint(w, *evaluated)?;
                    write_uvarint(w, *epoch)?;
                }
                Response::Saved { wal_records } => {
                    w.push(RESP_SAVED);
                    write_uvarint(w, *wal_records)?;
                }
                Response::Stats(s) => {
                    w.push(RESP_STATS);
                    for field in [
                        s.epoch,
                        s.sheets,
                        s.cells,
                        s.dirty,
                        s.graph_edges,
                        s.cross_edges,
                        s.edits,
                        s.batches,
                        s.recalcs,
                        s.coalesced,
                        s.sessions,
                        s.busy_rejected,
                        s.auth_failures,
                        s.scope_denials,
                        s.degraded,
                        s.deadline_expired,
                    ] {
                        write_uvarint(w, field)?;
                    }
                }
                Response::Metrics(snap) => {
                    w.push(RESP_METRICS);
                    write_metrics(w, snap)?;
                }
                Response::Traces(dump) => {
                    w.push(RESP_TRACES);
                    write_trace_dump(w, dump)?;
                }
                Response::Err(e) => {
                    w.push(RESP_ERR);
                    encode_error(w, e)?;
                }
            }
            Ok(())
        })();
        debug_assert!(infallible.is_ok(), "Vec sinks cannot fail");
        out
    }

    /// Decodes one frame payload; trailing bytes are an error.
    pub fn decode(mut bytes: &[u8]) -> Result<Self, StoreError> {
        let r = &mut bytes;
        let mut op = [0u8; 1];
        r.read_exact(&mut op)?;
        let resp = match op[0] {
            RESP_OPENED => {
                let token = read_uvarint(r)?;
                let epoch = read_uvarint(r)?;
                let n = read_uvarint(r)?;
                let mut sheets = Vec::new();
                for _ in 0..n {
                    sheets.push(read_wire_string(r)?);
                }
                Response::Opened { token, sheets, epoch }
            }
            RESP_CLOSED => Response::Closed,
            RESP_APPLIED => Response::Applied { epoch: read_uvarint(r)?, dirty: read_uvarint(r)? },
            RESP_VALUE => Response::Value(read_value(r)?),
            RESP_CELLS => {
                let n = read_uvarint(r)?;
                let mut cells = Vec::new();
                for _ in 0..n {
                    let c = read_cell(r)?;
                    cells.push((c, read_value(r)?));
                }
                Response::Cells(cells)
            }
            RESP_RANGES => {
                let n = read_uvarint(r)?;
                let mut ranges = Vec::new();
                for _ in 0..n {
                    let sheet = read_wire_string(r)?;
                    ranges.push((sheet, read_range(r)?));
                }
                Response::Ranges(ranges)
            }
            RESP_COUNT => Response::Count(read_uvarint(r)?),
            RESP_RECALCED => {
                Response::Recalced { evaluated: read_uvarint(r)?, epoch: read_uvarint(r)? }
            }
            RESP_SAVED => Response::Saved { wal_records: read_uvarint(r)? },
            RESP_STATS => {
                let mut fields = [0u64; 16];
                for f in &mut fields {
                    *f = read_uvarint(r)?;
                }
                Response::Stats(ServiceStats {
                    epoch: fields[0],
                    sheets: fields[1],
                    cells: fields[2],
                    dirty: fields[3],
                    graph_edges: fields[4],
                    cross_edges: fields[5],
                    edits: fields[6],
                    batches: fields[7],
                    recalcs: fields[8],
                    coalesced: fields[9],
                    sessions: fields[10],
                    busy_rejected: fields[11],
                    auth_failures: fields[12],
                    scope_denials: fields[13],
                    degraded: fields[14],
                    deadline_expired: fields[15],
                })
            }
            RESP_METRICS => Response::Metrics(Box::new(read_metrics(r)?)),
            RESP_TRACES => Response::Traces(Box::new(read_trace_dump(r)?)),
            RESP_ERR => Response::Err(decode_error(r)?),
            _ => return Err(StoreError::Malformed("unknown response op")),
        };
        if !r.is_empty() {
            return Err(StoreError::Malformed("trailing bytes in response"));
        }
        Ok(resp)
    }
}

const ERR_NO_WORKBOOK: u8 = 0;
const ERR_AUTH: u8 = 1;
const ERR_NO_SESSION: u8 = 2;
const ERR_NO_SHEET: u8 = 3;
const ERR_SCOPE: u8 = 4;
const ERR_BAD_REQUEST: u8 = 5;
const ERR_NOT_PERSISTENT: u8 = 6;
const ERR_BUSY: u8 = 7;
const ERR_SHUTDOWN: u8 = 8;
const ERR_WIRE: u8 = 9;
const ERR_IO: u8 = 10;
const ERR_PROTOCOL: u8 = 11;
const ERR_DEGRADED: u8 = 12;
const ERR_DEADLINE: u8 = 13;

fn encode_error<W: Write>(w: &mut W, e: &ServiceError) -> Result<(), StoreError> {
    let (code, msg): (u8, String) = match e {
        ServiceError::NoSuchWorkbook(n) => (ERR_NO_WORKBOOK, n.clone()),
        ServiceError::AuthFailed => (ERR_AUTH, String::new()),
        ServiceError::NoSession => (ERR_NO_SESSION, String::new()),
        ServiceError::NoSuchSheet(n) => (ERR_NO_SHEET, n.clone()),
        ServiceError::OutOfScope(n) => (ERR_SCOPE, n.clone()),
        ServiceError::BadRequest(why) => (ERR_BAD_REQUEST, why.clone()),
        ServiceError::NotPersistent => (ERR_NOT_PERSISTENT, String::new()),
        ServiceError::Degraded(why) => (ERR_DEGRADED, why.clone()),
        ServiceError::DeadlineExceeded => (ERR_DEADLINE, String::new()),
        ServiceError::Busy => (ERR_BUSY, String::new()),
        ServiceError::ShuttingDown => (ERR_SHUTDOWN, String::new()),
        ServiceError::Wire(e) => (ERR_WIRE, e.to_string()),
        ServiceError::Io(why) => (ERR_IO, why.clone()),
        ServiceError::Protocol(what) => (ERR_PROTOCOL, (*what).to_string()),
    };
    w.write_all(&[code])?;
    write_string(w, &msg)
}

fn decode_error<R: Read>(r: &mut R) -> Result<ServiceError, StoreError> {
    let mut code = [0u8; 1];
    r.read_exact(&mut code)?;
    let msg = read_wire_string(r)?;
    Ok(match code[0] {
        ERR_NO_WORKBOOK => ServiceError::NoSuchWorkbook(msg),
        ERR_AUTH => ServiceError::AuthFailed,
        ERR_NO_SESSION => ServiceError::NoSession,
        ERR_NO_SHEET => ServiceError::NoSuchSheet(msg),
        ERR_SCOPE => ServiceError::OutOfScope(msg),
        ERR_BAD_REQUEST => ServiceError::BadRequest(msg),
        ERR_NOT_PERSISTENT => ServiceError::NotPersistent,
        ERR_DEGRADED => ServiceError::Degraded(msg),
        ERR_DEADLINE => ServiceError::DeadlineExceeded,
        ERR_BUSY => ServiceError::Busy,
        ERR_SHUTDOWN => ServiceError::ShuttingDown,
        ERR_WIRE => ServiceError::BadRequest(format!("peer wire error: {msg}")),
        ERR_IO => ServiceError::Io(msg),
        ERR_PROTOCOL => ServiceError::BadRequest(format!("peer protocol error: {msg}")),
        _ => return Err(StoreError::Malformed("unknown error code")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use taco_formula::CellError;

    fn sample_requests() -> Vec<Request> {
        let c = Cell::new(3, 7);
        let r = Range::from_coords(1, 1, 4, 9);
        vec![
            Request::Open { workbook: "Sales".into(), auth: None, scope: None },
            Request::Open {
                workbook: "Sales".into(),
                auth: Some("sekrit".into()),
                scope: Some(vec!["Data".into(), "My Summary".into()]),
            },
            Request::Close { token: 99 },
            Request::SetValue {
                token: 1,
                sheet: "Data".into(),
                cell: c,
                value: Value::Number(2.5),
            },
            Request::SetFormula {
                token: 1,
                sheet: "Data".into(),
                cell: c,
                src: "SUM(A1:A9)".into(),
            },
            Request::Autofill { token: 2, sheet: "Data".into(), src: c, targets: r },
            Request::ClearRange { token: 2, sheet: "Data".into(), range: r },
            Request::Get { token: 3, sheet: "Data".into(), cell: c },
            Request::GetRange { token: 3, sheet: "Data".into(), range: r },
            Request::Dependents { token: 4, sheet: "Data".into(), range: r },
            Request::Precedents { token: 4, sheet: "Data".into(), range: r },
            Request::DirtyCount { token: 5 },
            Request::Recalc { token: 5 },
            Request::Save { token: 6 },
            Request::Stats { token: u64::MAX },
            Request::RecalcRange { token: 7, sheet: "Data".into(), range: r },
            Request::GetRangeFresh { token: 7, sheet: "Data".into(), range: r },
            Request::InsertRows { token: 8, sheet: "Data".into(), at: 5, n: 3 },
            Request::DeleteRows { token: 8, sheet: "Data".into(), at: 1, n: 200 },
            Request::InsertCols { token: 8, sheet: "Data".into(), at: 2, n: 1 },
            Request::DeleteCols { token: 8, sheet: "Data".into(), at: 7, n: u32::MAX },
            Request::Metrics { token: 9 },
            Request::TraceDump { token: 10 },
        ]
    }

    fn sample_responses() -> Vec<Response> {
        let c = Cell::new(3, 7);
        let r = Range::from_coords(1, 1, 4, 9);
        vec![
            Response::Opened { token: 42, sheets: vec!["Data".into(), "Out".into()], epoch: 7 },
            Response::Closed,
            Response::Applied { epoch: 8, dirty: 12 },
            Response::Value(Value::Text("héllo".into())),
            Response::Value(Value::Error(CellError::Ref)),
            Response::Cells(vec![(c, Value::Number(1.0)), (Cell::new(4, 7), Value::Bool(true))]),
            Response::Ranges(vec![("Data".into(), r), ("Out".into(), Range::cell(c))]),
            Response::Count(77),
            Response::Recalced { evaluated: 123, epoch: 9 },
            Response::Saved { wal_records: 0 },
            Response::Stats(ServiceStats {
                epoch: 1,
                sheets: 2,
                cells: 3,
                dirty: 4,
                graph_edges: 5,
                cross_edges: 6,
                edits: 7,
                batches: 8,
                recalcs: 9,
                coalesced: 10,
                sessions: 11,
                busy_rejected: 12,
                auth_failures: 13,
                scope_denials: 14,
                degraded: 1,
                deadline_expired: 15,
            }),
            Response::Metrics(Box::new(sample_snapshot())),
            Response::Metrics(Box::default()),
            Response::Traces(Box::new(sample_trace_dump())),
            Response::Traces(Box::default()),
            Response::Err(ServiceError::NoSuchWorkbook("nope".into())),
            Response::Err(ServiceError::AuthFailed),
            Response::Err(ServiceError::OutOfScope("Secret".into())),
            Response::Err(ServiceError::BadRequest("unparsable".into())),
            Response::Err(ServiceError::Degraded("wal append: disk full".into())),
            Response::Err(ServiceError::DeadlineExceeded),
        ]
    }

    fn sample_snapshot() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![MetricValue {
                name: "taco_wal_records_total".into(),
                labels: String::new(),
                value: 41,
            }],
            gauges: vec![GaugeValue {
                name: "taco_graph_edges".into(),
                labels: "book=\"demo\"".into(),
                value: -3,
            }],
            histograms: vec![HistogramSnapshot {
                name: "taco_recalc_ns".into(),
                labels: "mode=\"serial\"".into(),
                count: 3,
                sum: 905,
                buckets: vec![(3, 2), (10, 1)],
                p50: 7,
                p90: 1023,
                p99: 1023,
            }],
            slow_spans: vec![SlowSpan {
                name: "workbook.recalc".into(),
                cat: SpanCat::Recalc,
                trace_hi: 0x0123_4567_89AB_CDEF,
                trace_lo: u64::MAX,
                span_id: 11,
                parent_id: 7,
                start_ns: 5,
                dur_ns: 20_000_000,
                a: 100,
                b: 2,
            }],
        }
    }

    fn sample_trace_dump() -> TraceDump {
        let span = |name: &str, cat, span_id, parent_id| SlowSpan {
            name: name.into(),
            cat,
            trace_hi: 0xFEED_FACE_CAFE_BEEF,
            trace_lo: 0x0102_0304_0506_0708,
            span_id,
            parent_id,
            start_ns: 10,
            dur_ns: 50,
            a: 1,
            b: 2,
        };
        TraceDump {
            recent: vec![
                span("request.recalc", SpanCat::Request, 1, 0),
                span("workbook.recalc", SpanCat::Recalc, 2, 1),
                span("wal.append", SpanCat::WalAppend, 3, 1),
            ],
            slow: vec![span("request.recalc", SpanCat::Request, 1, 0)],
        }
    }

    #[test]
    fn requests_round_trip() {
        for req in sample_requests() {
            let bytes = req.encode();
            assert_eq!(Request::decode(&bytes).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in sample_responses() {
            let bytes = resp.encode();
            assert_eq!(Response::decode(&bytes).unwrap(), resp, "{resp:?}");
        }
    }

    fn sample_ctx() -> TraceContext {
        TraceContext {
            trace_hi: 0xAAAA_BBBB_CCCC_DDDD,
            trace_lo: 0x1111_2222_3333_4444,
            span_id: 42,
            parent_id: 0,
        }
    }

    #[test]
    fn traced_wrapper_round_trips_context_and_request() {
        for req in sample_requests() {
            let bytes = req.encode_traced(sample_ctx());
            let (ctx, decoded) = Request::decode_traced(&bytes).unwrap();
            assert_eq!(decoded, req, "{req:?}");
            let ctx = ctx.expect("wrapper carries a context");
            assert_eq!(ctx.trace_hi, sample_ctx().trace_hi);
            assert_eq!(ctx.trace_lo, sample_ctx().trace_lo);
            assert_eq!(ctx.span_id, sample_ctx().span_id, "carried span id is the parent");
            // The plain decoder accepts the wrapper and drops the context.
            assert_eq!(Request::decode(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn untraced_requests_decode_with_no_context() {
        for req in sample_requests() {
            let (ctx, decoded) = Request::decode_traced(&req.encode()).unwrap();
            assert!(ctx.is_none(), "{req:?}");
            assert_eq!(decoded, req);
        }
    }

    #[test]
    fn malformed_traced_wrappers_are_typed() {
        // A zero trace id cannot name a trace.
        let mut zeroed = Request::Recalc { token: 1 }.encode_traced(sample_ctx());
        zeroed[1..17].fill(0);
        assert!(matches!(
            Request::decode_traced(&zeroed),
            Err(StoreError::Malformed("traced wrapper with zero trace id"))
        ));
        // A wrapper inside a wrapper is rejected, not recursed into.
        let inner = Request::Recalc { token: 1 }.encode_traced(sample_ctx());
        let mut nested = vec![super::REQ_TRACED];
        nested.extend_from_slice(&[1u8; 24]);
        nested.extend_from_slice(&inner);
        assert!(matches!(
            Request::decode_traced(&nested),
            Err(StoreError::Malformed("nested traced wrapper"))
        ));
        // A bare wrapper with no inner request is truncation, not panic.
        let bare = &inner[..25];
        assert!(Request::decode_traced(bare).is_err());
    }

    #[test]
    fn every_truncation_is_typed() {
        for req in sample_requests() {
            let bytes = req.encode();
            for cut in 0..bytes.len() {
                assert!(Request::decode(&bytes[..cut]).is_err(), "{req:?} cut at {cut}");
            }
            let traced = req.encode_traced(sample_ctx());
            for cut in 0..traced.len() {
                assert!(
                    Request::decode_traced(&traced[..cut]).is_err(),
                    "traced {req:?} cut at {cut}"
                );
            }
        }
        for resp in sample_responses() {
            let bytes = resp.encode();
            for cut in 0..bytes.len() {
                assert!(Response::decode(&bytes[..cut]).is_err(), "{resp:?} cut at {cut}");
            }
        }
    }

    #[test]
    fn trailing_bytes_are_typed() {
        let mut bytes = Request::Recalc { token: 1 }.encode();
        bytes.push(0);
        assert!(matches!(
            Request::decode(&bytes),
            Err(StoreError::Malformed("trailing bytes in request"))
        ));
        let mut bytes = Response::Closed.encode();
        bytes.push(0);
        assert!(matches!(
            Response::decode(&bytes),
            Err(StoreError::Malformed("trailing bytes in response"))
        ));
    }

    #[test]
    fn every_bit_flip_is_handled() {
        // A flipped byte may still decode (e.g. inside string content) —
        // the property is that decoding never panics and never
        // over-allocates, for every single-bit corruption of every
        // sample message.
        for req in sample_requests() {
            for bytes in [req.encode(), req.encode_traced(sample_ctx())] {
                for i in 0..bytes.len() {
                    for bit in 0..8 {
                        let mut corrupt = bytes.clone();
                        corrupt[i] ^= 1 << bit;
                        let _ = Request::decode_traced(&corrupt);
                    }
                }
            }
        }
        for resp in sample_responses() {
            let bytes = resp.encode();
            for i in 0..bytes.len() {
                for bit in 0..8 {
                    let mut corrupt = bytes.clone();
                    corrupt[i] ^= 1 << bit;
                    let _ = Response::decode(&corrupt);
                }
            }
        }
    }

    #[test]
    fn oversized_metrics_lengths_are_rejected_before_allocation() {
        use taco_store::codec::write_uvarint;
        // Each of the four list headers in turn declares u64::MAX
        // entries; the decoder must fail on the length check, not
        // attempt a reservation.
        for lists_before in 0..4usize {
            let mut bytes = vec![super::RESP_METRICS];
            for _ in 0..lists_before {
                write_uvarint(&mut bytes, 0).unwrap();
            }
            write_uvarint(&mut bytes, u64::MAX).unwrap();
            assert!(matches!(
                Response::decode(&bytes),
                Err(StoreError::Malformed("metrics list length out of range"))
            ));
        }
        // Same for a histogram's bucket list.
        let mut bytes = vec![super::RESP_METRICS];
        write_uvarint(&mut bytes, 0).unwrap(); // counters
        write_uvarint(&mut bytes, 0).unwrap(); // gauges
        write_uvarint(&mut bytes, 1).unwrap(); // one histogram
        write_string(&mut bytes, "h").unwrap();
        write_string(&mut bytes, "").unwrap();
        write_uvarint(&mut bytes, 1).unwrap(); // count
        write_uvarint(&mut bytes, 1).unwrap(); // sum
        write_uvarint(&mut bytes, u64::MAX).unwrap(); // buckets
        assert!(matches!(
            Response::decode(&bytes),
            Err(StoreError::Malformed("histogram bucket count out of range"))
        ));
    }

    #[test]
    fn metrics_snapshot_round_trips_losslessly() {
        let resp = Response::Metrics(Box::new(sample_snapshot()));
        let bytes = resp.encode();
        assert_eq!(Response::decode(&bytes).unwrap(), resp);
    }

    #[test]
    fn trace_dump_round_trips_losslessly() {
        let resp = Response::Traces(Box::new(sample_trace_dump()));
        let bytes = resp.encode();
        assert_eq!(Response::decode(&bytes).unwrap(), resp);
    }

    #[test]
    fn oversized_trace_lists_are_rejected_before_allocation() {
        use taco_store::codec::write_uvarint;
        for lists_before in 0..2usize {
            let mut bytes = vec![super::RESP_TRACES];
            for _ in 0..lists_before {
                write_uvarint(&mut bytes, 0).unwrap();
            }
            write_uvarint(&mut bytes, u64::MAX).unwrap();
            assert!(matches!(
                Response::decode(&bytes),
                Err(StoreError::Malformed("metrics list length out of range"))
            ));
        }
    }

    #[test]
    fn unknown_ops_are_typed() {
        assert!(matches!(
            Request::decode(&[200]),
            Err(StoreError::Malformed("unknown request op"))
        ));
        assert!(matches!(
            Response::decode(&[200]),
            Err(StoreError::Malformed("unknown response op"))
        ));
        assert!(Request::decode(&[]).is_err());
    }
}
