//! The server core: a registry of named workbooks, each owned by a
//! single writer thread, with lock-free epoch snapshots for reads.
//!
//! # Concurrency model
//!
//! Every registered workbook is owned by **one worker thread**; nothing
//! else ever holds `&mut` to it. The two access paths:
//!
//! - **Reads** (`Get`, `GetRange`, `DirtyCount`, `Stats`) execute on the
//!   *caller's* thread against the workbook's current [`Snapshot`] — an
//!   immutable, `Arc`-shared copy of the cell values. The snapshot
//!   pointer lives in an `RwLock<Arc<Snapshot>>` whose write lock is held
//!   only for the pointer swap (and the read lock only for a pointer
//!   clone), so a reader never waits for an edit to apply, a batch to
//!   route, or a recalculation to finish — it just sees the previous
//!   epoch until the next one is published.
//! - **Writes** (`SetValue`, `SetFormula`, `Autofill`, `ClearRange`) and
//!   operations that need the graph or the file (`Dependents`,
//!   `Precedents`, `Recalc`, `Save`) are messages to the worker. The
//!   worker **coalesces** its queue: when it dequeues an edit it drains
//!   every immediately-available edit behind it (up to
//!   [`ServiceOptions::max_batch`]) and applies them as one
//!   [`Workbook::apply_batch`] — one dirty-propagation pass and **one**
//!   recalculation for the whole batch instead of one per edit. Batched
//!   and unbatched application are result-identical (property-tested in
//!   `crates/engine/tests/batch.rs` and end-to-end in
//!   `crates/service/tests/concurrent.rs`).
//!
//! After every batch the worker publishes a new snapshot with
//! copy-on-write sheet granularity: untouched sheets share their cell map
//! `Arc` with the previous epoch, so publication cost scales with what
//! the batch touched, not with workbook size.
//!
//! A workbook may be backed by a [`PersistentWorkbook`] (WAL + snapshot
//! file): edits then go through [`PersistentWorkbook::log_batch`], which
//! appends the whole batch to the WAL with one fsync decision, so a crash
//! reopens to a clean *prefix* of the applied edit order (the WAL tear
//! rules of `taco_store::wal`).
//!
//! [`Workbook::apply_batch`]: taco_engine::Workbook::apply_batch

use crate::obs::ServiceObs;
use crate::protocol::{Request, Response, ServiceStats};
use crate::session::{Session, SessionToken};
use crate::ServiceError;
use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use taco_core::StructuralOp;
use taco_engine::{PersistentWorkbook, RecalcMode, SheetId, Workbook, WorkbookReceipt};
use taco_formula::{Formula, Value};
use taco_grid::{Cell, Range};
use taco_obs::{SpanCat, TraceContext, Tracer};
use taco_store::EditRecord;

/// Tuning for a [`Registry`] and the workers it spawns.
#[derive(Debug, Clone)]
pub struct ServiceOptions {
    /// Coalesce queued edits into one batch + one recalculation
    /// (`false` = apply, route, and recalculate every edit individually —
    /// the comparison baseline for the throughput bench).
    pub coalesce: bool,
    /// Largest number of edits one batch may absorb.
    pub max_batch: usize,
    /// How workers recalculate (serial, or sheet-parallel).
    pub recalc_mode: RecalcMode,
    /// Whether to run an observability hub: per-operation latency
    /// histograms, engine/WAL instrumentation on every registered
    /// workbook, and the `Metrics` request. When `false` the registry
    /// holds no hub at all — recording sites compile to a `None` check —
    /// and `Metrics` answers `BadRequest`.
    pub obs: bool,
    /// Bind address for the scrape sidecar (e.g. `"127.0.0.1:0"`): a
    /// minimal HTTP/1.1 listener serving `GET /metrics` (Prometheus
    /// text) and `GET /trace` (Chrome `trace_event` JSON). Requires
    /// [`ServiceOptions::obs`]; `None` (the default) runs no listener.
    pub http_metrics: Option<String>,
    /// Recalculation profiler mode applied to every registered workbook
    /// (per-level wall times, optionally top-K hottest cells, exported
    /// as `taco_profile_*` histograms). Default off.
    pub profile: taco_engine::ProfileMode,
    /// Hub construction options when [`ServiceOptions::obs`] is on:
    /// tracer ring sizes, slow threshold, clock, and id seed (a manual
    /// clock plus a fixed seed makes span trees reproducible in tests).
    pub obs_options: taco_obs::ObsOptions,
    /// Per-request deadline for operations that round-trip through a
    /// workbook's writer thread (writes, recalcs, graph queries, saves).
    /// When the worker does not reply in time the caller gets a typed
    /// [`ServiceError::DeadlineExceeded`] — note the operation may still
    /// complete afterwards (the worker keeps going; only the reply is
    /// abandoned), so for writes a deadline means *unknown*, not *not
    /// applied*. Snapshot reads never queue and are not subject to it.
    /// `None` (the default) waits indefinitely.
    pub deadline: Option<std::time::Duration>,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            coalesce: true,
            max_batch: 256,
            recalc_mode: RecalcMode::Serial,
            obs: true,
            http_metrics: None,
            profile: taco_engine::ProfileMode::Off,
            obs_options: taco_obs::ObsOptions::default(),
            deadline: None,
        }
    }
}

// ---- snapshots ----------------------------------------------------------

/// One sheet's slice of a snapshot.
struct SheetSnap {
    /// Shared with the previous epoch when the sheet kept its name.
    name: Arc<str>,
    cells: Arc<HashMap<Cell, Value>>,
}

/// An immutable view of a workbook's cell values at one publication
/// epoch. Cheap to share (`Arc` per sheet) and cheap to republish
/// (copy-on-write: only sheets a batch touched are rebuilt; the name
/// index and sheet names are `Arc`-shared with the previous epoch
/// whenever the sheet set is unchanged, so steady-state publication
/// cost is exactly the touched sheets).
pub struct Snapshot {
    /// Publication counter; bumps once per published batch/recalc.
    pub epoch: u64,
    sheets: Vec<SheetSnap>,
    /// Lower-cased sheet name → dense index.
    index: Arc<HashMap<String, usize>>,
    /// Cells awaiting recalculation when this epoch was published.
    pub dirty: u64,
    /// Non-empty cells across all sheets.
    pub cells_total: u64,
    /// Compressed formula-graph edges across all sheets.
    pub graph_edges: u64,
    /// Inter-sheet edges.
    pub cross_edges: u64,
}

impl Snapshot {
    /// Builds epoch 0 from a live workbook.
    fn build(wb: &Workbook) -> Snapshot {
        Snapshot::rebuild_from(None, wb, &BTreeSet::new())
    }

    /// Builds `prev`'s successor, rebuilding only `touched` sheets (and
    /// any sheet `prev` does not know yet).
    fn rebuild_from(prev: Option<&Snapshot>, wb: &Workbook, touched: &BTreeSet<usize>) -> Snapshot {
        let mut sheets = Vec::with_capacity(wb.sheet_count());
        // The name index is reused wholesale unless a sheet was added,
        // removed, or renamed since the previous epoch.
        let mut same_names = prev.is_some_and(|p| p.sheets.len() == wb.sheet_count());
        for i in 0..wb.sheet_count() {
            let id = SheetId(i);
            let name = wb.sheet_name(id);
            let prev_sheet = prev.and_then(|p| p.sheets.get(i));
            let name: Arc<str> = match prev_sheet {
                Some(s) if &*s.name == name => Arc::clone(&s.name),
                _ => {
                    same_names = false;
                    Arc::from(name)
                }
            };
            let reusable = prev_sheet.filter(|s| !touched.contains(&i) && s.name == name);
            let cells = match reusable {
                Some(s) => Arc::clone(&s.cells),
                None => {
                    Arc::new(wb.sheet(id).cells().map(|(c, k)| (c, k.value().clone())).collect())
                }
            };
            sheets.push(SheetSnap { name, cells });
        }
        let index = match prev {
            Some(p) if same_names => Arc::clone(&p.index),
            _ => Arc::new(
                sheets.iter().enumerate().map(|(i, s)| (s.name.to_ascii_lowercase(), i)).collect(),
            ),
        };
        Snapshot {
            epoch: prev.map_or(0, |p| p.epoch + 1),
            dirty: wb.dirty_count() as u64,
            cells_total: sheets.iter().map(|s| s.cells.len() as u64).sum(),
            graph_edges: (0..wb.sheet_count())
                .map(|i| wb.sheet(SheetId(i)).graph().num_edges() as u64)
                .sum(),
            cross_edges: wb.cross_edge_count() as u64,
            sheets,
            index,
        }
    }

    /// Resolves a sheet name (case-insensitive) to its dense index.
    pub fn sheet_index(&self, name: &str) -> Option<usize> {
        self.index.get(&name.to_ascii_lowercase()).copied()
    }

    /// The sheet names, in dense order.
    pub fn sheet_names(&self) -> Vec<String> {
        self.sheets.iter().map(|s| s.name.to_string()).collect()
    }

    /// One cell's value (`Empty` for never-written cells).
    pub fn value(&self, sheet: usize, cell: Cell) -> Value {
        self.sheets.get(sheet).and_then(|s| s.cells.get(&cell).cloned()).unwrap_or(Value::Empty)
    }

    /// Every non-empty cell of `range`, sorted by (row, col).
    pub fn cells_in(&self, sheet: usize, range: Range) -> Vec<(Cell, Value)> {
        let Some(s) = self.sheets.get(sheet) else { return Vec::new() };
        let mut out: Vec<(Cell, Value)> = s
            .cells
            .iter()
            .filter(|(c, _)| range.contains_cell(**c))
            .map(|(c, v)| (*c, v.clone()))
            .collect();
        out.sort_unstable_by_key(|(c, _)| (c.row, c.col));
        out
    }
}

// ---- worker plumbing ----------------------------------------------------

/// Monotone per-workbook counters (relaxed: they are diagnostics, not
/// synchronization).
#[derive(Default)]
struct Counters {
    edits: AtomicU64,
    batches: AtomicU64,
    recalcs: AtomicU64,
    coalesced: AtomicU64,
}

/// State shared between the worker thread and the registry. Deliberately
/// does **not** contain the worker's `Sender`: when the registry drops,
/// the sender drops with it and the worker's `recv` unblocks.
struct BookShared {
    snapshot: RwLock<Arc<Snapshot>>,
    stats: Counters,
    /// Set when a storage fault left the WAL (or snapshot file) behind
    /// the live workbook: writes are refused with a typed
    /// [`ServiceError::Degraded`] until a successful `Save` rewrites the
    /// snapshot from the live state and heals the log. Reads keep
    /// serving the published snapshots throughout.
    degraded: AtomicBool,
    /// Which fault started the degradation (for the error payload).
    degraded_reason: Mutex<String>,
}

impl BookShared {
    fn publish(&self, wb: &Workbook, touched: &BTreeSet<usize>) -> u64 {
        let prev = Arc::clone(&self.snapshot.read());
        let next = Arc::new(Snapshot::rebuild_from(Some(&prev), wb, touched));
        let epoch = next.epoch;
        *self.snapshot.write() = next;
        epoch
    }

    /// Enters the degraded state; returns `true` on the transition (so
    /// the caller can bump the fleet gauge exactly once).
    fn degrade(&self, reason: String) -> bool {
        *self.degraded_reason.lock() = reason;
        !self.degraded.swap(true, Ordering::SeqCst)
    }

    /// Leaves the degraded state; returns `true` on the transition.
    fn heal(&self) -> bool {
        self.degraded.swap(false, Ordering::SeqCst)
    }

    fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst)
    }

    /// The reply writes get while the workbook is degraded.
    fn degraded_error(&self) -> ServiceError {
        ServiceError::Degraded(self.degraded_reason.lock().clone())
    }
}

/// One queued write.
enum WriteOp {
    Edit(EditRecord),
    Autofill { sheet: u32, src: Cell, targets: Range },
}

/// One message to a workbook's worker. Every work-carrying variant
/// carries the requesting span's [`TraceContext`] so the worker can
/// parent what it records (engine levels, WAL appends, publication)
/// under the request that caused it — `NONE` when tracing is off or the
/// caller had no span.
enum WorkerMsg {
    Write {
        op: WriteOp,
        ctx: TraceContext,
        reply: Sender<Response>,
    },
    Graph {
        dependents: bool,
        sheet: u32,
        range: Range,
        ctx: TraceContext,
        reply: Sender<Response>,
    },
    Recalc {
        ctx: TraceContext,
        reply: Sender<Response>,
    },
    /// Demand-driven recalc of one viewport; `fetch` additionally reads
    /// the viewport's cells from the freshly published snapshot.
    Demand {
        sheet: u32,
        range: Range,
        fetch: bool,
        ctx: TraceContext,
        reply: Sender<Response>,
    },
    Save {
        ctx: TraceContext,
        reply: Sender<Response>,
    },
    Shutdown,
}

/// A registered workbook: its shared read state plus the writer queue.
struct BookHandle {
    name: String,
    auth: Option<String>,
    shared: Arc<BookShared>,
    tx: Mutex<Sender<WorkerMsg>>,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl BookHandle {
    fn send(&self, msg: WorkerMsg) -> Result<(), ServiceError> {
        self.tx.lock().send(msg).map_err(|_| ServiceError::ShuttingDown)
    }

    /// Sends `msg` and waits for the worker's reply, up to `deadline`
    /// when one is configured. On timeout the reply channel is dropped
    /// and the worker's eventual answer goes nowhere — the operation
    /// itself is not cancelled.
    fn ask(
        &self,
        deadline: Option<std::time::Duration>,
        make: impl FnOnce(Sender<Response>) -> WorkerMsg,
    ) -> Response {
        let (reply, rx) = channel::unbounded();
        if self.send(make(reply)).is_err() {
            return Response::Err(ServiceError::ShuttingDown);
        }
        match deadline {
            None => match rx.recv() {
                Ok(resp) => resp,
                Err(_) => Response::Err(ServiceError::ShuttingDown),
            },
            Some(d) => match rx.recv_timeout(d) {
                Ok(resp) => resp,
                Err(channel::RecvTimeoutError::Timeout) => {
                    Response::Err(ServiceError::DeadlineExceeded)
                }
                Err(channel::RecvTimeoutError::Disconnected) => {
                    Response::Err(ServiceError::ShuttingDown)
                }
            },
        }
    }
}

/// What a worker owns: a bare workbook, or one with a WAL+snapshot home.
enum Backing {
    Plain(Workbook),
    Persistent(PersistentWorkbook),
}

impl Backing {
    fn workbook(&self) -> &Workbook {
        match self {
            Backing::Plain(wb) => wb,
            Backing::Persistent(p) => p.workbook(),
        }
    }

    fn workbook_mut(&mut self) -> &mut Workbook {
        match self {
            Backing::Plain(wb) => wb,
            Backing::Persistent(p) => p.workbook_mut(),
        }
    }

    /// One batch, logged when persistent.
    fn apply_batch(
        &mut self,
        records: &[EditRecord],
    ) -> Result<WorkbookReceipt, taco_engine::BatchError> {
        match self {
            Backing::Plain(wb) => wb.apply_batch(records),
            Backing::Persistent(p) => p.log_batch(records),
        }
    }

    fn autofill(
        &mut self,
        sheet: SheetId,
        src: Cell,
        targets: Range,
    ) -> Result<WorkbookReceipt, taco_store::StoreError> {
        match self {
            Backing::Plain(wb) => wb
                .autofill(sheet, src, targets)
                .map_err(|e| taco_store::StoreError::InvalidRecord(e.to_string())),
            Backing::Persistent(p) => p.autofill(sheet, src, targets),
        }
    }

    fn is_persistent(&self) -> bool {
        matches!(self, Backing::Persistent(_))
    }

    /// Attaches engine (and, when persistent, WAL) instrumentation.
    fn attach_obs(&mut self, obs: &taco_obs::Obs, label: &str) {
        match self {
            Backing::Plain(wb) => wb.attach_obs(obs, label),
            Backing::Persistent(p) => p.attach_obs(obs, label),
        }
    }

    fn recalculate(&mut self, mode: RecalcMode) -> usize {
        match self {
            Backing::Plain(wb) => wb.recalculate(mode),
            Backing::Persistent(p) => p.recalculate(mode),
        }
    }

    /// Demand-driven recalc needs no logging (values are derivable), so
    /// both backings go straight to the workbook.
    fn recalc_demand(
        &mut self,
        id: SheetId,
        viewport: Range,
        mode: RecalcMode,
    ) -> Result<usize, taco_engine::WorkbookError> {
        self.workbook_mut().recalc_demand(id, viewport, mode)
    }
}

// ---- the registry -------------------------------------------------------

/// Refusal tallies for [`ServiceStats`] — always counted (obs on or off)
/// so the `Stats` request reports them unconditionally. Relaxed: they are
/// diagnostics, not synchronization.
#[derive(Default)]
struct Refusals {
    busy: AtomicU64,
    auth: AtomicU64,
    scope: AtomicU64,
    deadline: AtomicU64,
}

/// A registry of named workbooks plus the session table; the shared core
/// both transports execute against.
pub struct Registry {
    opts: ServiceOptions,
    books: RwLock<HashMap<String, Arc<BookHandle>>>,
    sessions: Mutex<HashMap<u64, Session>>,
    next_seq: AtomicU64,
    token_seed: u64,
    down: AtomicBool,
    refusals: Refusals,
    svc_obs: Option<ServiceObs>,
    http: Mutex<Option<crate::http::HttpSidecar>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new(ServiceOptions::default())
    }
}

impl Registry {
    /// An empty registry.
    pub fn new(opts: ServiceOptions) -> Registry {
        let token_seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED)
            | 1;
        let svc_obs =
            opts.obs.then(|| ServiceObs::new(taco_obs::Obs::new(opts.obs_options.clone())));
        // The scrape sidecar is best-effort: a bind failure (port taken,
        // no permission) leaves `http_addr()` as `None` rather than
        // failing registry construction.
        let http = match (&svc_obs, opts.http_metrics.as_deref()) {
            (Some(o), Some(addr)) => crate::http::HttpSidecar::start(addr, Arc::clone(&o.hub)).ok(),
            _ => None,
        };
        Registry {
            opts,
            books: RwLock::new(HashMap::new()),
            sessions: Mutex::new(HashMap::new()),
            next_seq: AtomicU64::new(1),
            token_seed,
            down: AtomicBool::new(false),
            refusals: Refusals::default(),
            svc_obs,
            http: Mutex::new(http),
        }
    }

    /// The scrape sidecar's bound address, when [`ServiceOptions::obs`]
    /// and [`ServiceOptions::http_metrics`] are both set and the bind
    /// succeeded (resolves an ephemeral port).
    pub fn http_addr(&self) -> Option<std::net::SocketAddr> {
        self.http.lock().as_ref().map(crate::http::HttpSidecar::addr)
    }

    /// The registry's observability hub, when enabled
    /// ([`ServiceOptions::obs`]) — for local exposition (the repl's
    /// `:metrics`, dashboards) without a wire round-trip.
    pub fn obs(&self) -> Option<&Arc<taco_obs::Obs>> {
        self.svc_obs.as_ref().map(|o| &o.hub)
    }

    /// Registers a workbook under `name` (case-insensitive, must be
    /// unused); `auth` = the token clients must present to open it.
    /// Spawns the workbook's writer thread.
    pub fn add_workbook(
        &self,
        name: &str,
        wb: Workbook,
        auth: Option<&str>,
    ) -> Result<(), ServiceError> {
        self.register(name, auth, Backing::Plain(wb))
    }

    /// Registers a WAL-backed workbook: edits are batch-appended to its
    /// log, `Save` folds the log into the snapshot file.
    pub fn add_persistent(
        &self,
        name: &str,
        pw: PersistentWorkbook,
        auth: Option<&str>,
    ) -> Result<(), ServiceError> {
        self.register(name, auth, Backing::Persistent(pw))
    }

    fn register(
        &self,
        name: &str,
        auth: Option<&str>,
        mut backing: Backing,
    ) -> Result<(), ServiceError> {
        if name.is_empty() {
            return Err(ServiceError::BadRequest("empty workbook name".into()));
        }
        if let Some(o) = &self.svc_obs {
            backing.attach_obs(&o.hub, name);
        }
        backing.workbook_mut().set_profile(self.opts.profile);
        let key = name.to_ascii_lowercase();
        let shared = Arc::new(BookShared {
            snapshot: RwLock::new(Arc::new(Snapshot::build(backing.workbook()))),
            stats: Counters::default(),
            degraded: AtomicBool::new(false),
            degraded_reason: Mutex::new(String::new()),
        });
        let (tx, rx) = channel::unbounded();
        let mut books = self.books.write();
        if books.contains_key(&key) {
            return Err(ServiceError::BadRequest(format!("workbook {name:?} already registered")));
        }
        let worker_shared = Arc::clone(&shared);
        let worker_opts = self.opts.clone();
        let worker_obs = self.svc_obs.as_ref().map(|o| WorkerObs {
            coalesce_batch: o.coalesce_batch.clone(),
            degraded_books: o.degraded_books.clone(),
            tracer: o.tracer.clone(),
        });
        let worker = std::thread::Builder::new()
            .name(format!("taco-writer-{key}"))
            .spawn(move || worker_loop(rx, backing, worker_shared, worker_opts, worker_obs))
            .map_err(|e| ServiceError::Io(e.to_string()))?;
        books.insert(
            key,
            Arc::new(BookHandle {
                name: name.to_string(),
                auth: auth.map(str::to_string),
                shared,
                tx: Mutex::new(tx),
                worker: Mutex::new(Some(worker)),
            }),
        );
        Ok(())
    }

    /// The registered workbook names (registration case preserved).
    pub fn workbook_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.books.read().values().map(|b| b.name.clone()).collect();
        names.sort();
        names
    }

    /// The current snapshot of a workbook (diagnostics, tests).
    pub fn snapshot(&self, workbook: &str) -> Option<Arc<Snapshot>> {
        let handle = self.handle(&workbook.to_ascii_lowercase())?;
        let snap = Arc::clone(&handle.shared.snapshot.read());
        Some(snap)
    }

    /// Write-queue barrier: waits until every write queued before this
    /// call has been applied (and recalculated). Returns `false` when the
    /// workbook is unknown or its worker is gone.
    pub fn quiesce(&self, workbook: &str) -> bool {
        let Some(handle) = self.handle(&workbook.to_ascii_lowercase()) else { return false };
        // A barrier waits as long as it takes — no deadline here.
        matches!(
            handle.ask(None, |reply| WorkerMsg::Recalc { ctx: TraceContext::NONE, reply }),
            Response::Recalced { .. }
        )
    }

    /// Closes a session (idempotent — closing an unknown token is a
    /// no-op, so transports can clean up unconditionally).
    pub fn close_session(&self, token: u64) {
        let count = {
            let mut sessions = self.sessions.lock();
            sessions.remove(&token);
            sessions.len()
        };
        if let Some(o) = &self.svc_obs {
            o.sessions.set(count as i64);
        }
    }

    /// Open sessions across all workbooks.
    pub fn session_count(&self) -> usize {
        self.sessions.lock().len()
    }

    /// Stops accepting requests, drains every worker, and joins the
    /// writer threads (persistent workbooks get a final WAL fsync).
    /// Idempotent.
    pub fn shutdown(&self) {
        self.down.store(true, Ordering::SeqCst);
        if let Some(http) = self.http.lock().take() {
            http.shutdown();
        }
        let handles: Vec<Arc<BookHandle>> = self.books.read().values().cloned().collect();
        for handle in handles {
            let _ = handle.send(WorkerMsg::Shutdown);
            if let Some(worker) = handle.worker.lock().take() {
                let _ = worker.join();
            }
        }
        self.sessions.lock().clear();
        if let Some(o) = &self.svc_obs {
            o.sessions.set(0);
        }
    }

    fn handle(&self, key: &str) -> Option<Arc<BookHandle>> {
        self.books.read().get(key).cloned()
    }

    /// Resolves a token to its session and workbook handle.
    fn resolve(&self, token: u64) -> Result<(Session, Arc<BookHandle>), ServiceError> {
        let session = self.sessions.lock().get(&token).cloned().ok_or(ServiceError::NoSession)?;
        let handle = self.handle(&session.workbook).ok_or(ServiceError::NoSession)?;
        Ok((session, handle))
    }

    /// Resolves token + sheet name to the handle and the sheet's dense
    /// index, enforcing the session scope.
    fn resolve_sheet(
        &self,
        token: u64,
        sheet: &str,
    ) -> Result<(Session, Arc<BookHandle>, u32), ServiceError> {
        let (session, handle) = self.resolve(token)?;
        session.check(sheet)?;
        let snap = Arc::clone(&handle.shared.snapshot.read());
        let idx =
            snap.sheet_index(sheet).ok_or_else(|| ServiceError::NoSuchSheet(sheet.to_string()))?;
        Ok((session, handle, idx as u32))
    }

    /// Executes one request — the single entry point both transports
    /// share. Never panics; every failure is a [`Response::Err`].
    pub fn execute(&self, req: Request) -> Response {
        self.execute_traced(req, None, 0)
    }

    /// [`Registry::execute`] with wire context: `wire_ctx` is the trace
    /// context a traced request wrapper carried (the request span becomes
    /// its child, so server-side spans hang off the caller's tree) and
    /// `payload_len` the wire payload size recorded on the request span.
    pub fn execute_traced(
        &self,
        req: Request,
        wire_ctx: Option<TraceContext>,
        payload_len: u64,
    ) -> Response {
        if self.down.load(Ordering::SeqCst) {
            return Response::Err(ServiceError::ShuttingDown);
        }
        let tag = req.tag();
        let timing = self.svc_obs.as_ref().map(ServiceObs::start);
        let ctx = self.svc_obs.as_ref().map(|o| o.request_ctx(wire_ctx));
        // The request context stays ambient for the dispatch below:
        // spans recorded on this thread nest under it, and worker
        // messages capture it explicitly for cross-thread work.
        let _guard = ctx.map(TraceContext::enter);
        let resp = match self.try_execute(req) {
            Ok(resp) => resp,
            Err(e) => Response::Err(e),
        };
        if let Response::Err(e) = &resp {
            self.note_refusal(e);
        }
        if let (Some(o), Some((start, start_ns)), Some(ctx)) = (self.svc_obs.as_ref(), timing, ctx)
        {
            o.on_request(tag, start, start_ns, ctx, payload_len);
        }
        resp
    }

    /// Tallies refusals the `Stats` request reports (and mirrors them
    /// into the hub's counters when obs is on).
    fn note_refusal(&self, e: &ServiceError) {
        let (tally, counter) = match e {
            ServiceError::AuthFailed => {
                (&self.refusals.auth, self.svc_obs.as_ref().map(|o| &o.auth_failures))
            }
            ServiceError::OutOfScope(_) => {
                (&self.refusals.scope, self.svc_obs.as_ref().map(|o| &o.scope_denials))
            }
            ServiceError::Busy => {
                (&self.refusals.busy, self.svc_obs.as_ref().map(|o| &o.busy_rejected))
            }
            ServiceError::DeadlineExceeded => {
                (&self.refusals.deadline, self.svc_obs.as_ref().map(|o| &o.deadline_expired))
            }
            _ => return,
        };
        tally.fetch_add(1, Ordering::Relaxed);
        if let Some(c) = counter {
            c.inc();
        }
    }

    /// Counts a connection refused at the acceptor's limit (the server's
    /// Busy path never reaches [`Registry::execute`]).
    pub(crate) fn note_busy_rejection(&self) {
        self.note_refusal(&ServiceError::Busy);
    }

    /// Publishes the server's live connection count to the hub gauge.
    pub(crate) fn note_connections(&self, n: i64) {
        if let Some(o) = &self.svc_obs {
            o.connections.set(n);
        }
    }

    fn try_execute(&self, req: Request) -> Result<Response, ServiceError> {
        match req {
            Request::Open { workbook, auth, scope } => self.open(&workbook, auth, scope),
            Request::Close { token } => {
                self.close_session(token);
                Ok(Response::Closed)
            }
            Request::SetValue { token, sheet, cell, value } => {
                let (_, handle, sid) = self.resolve_sheet(token, &sheet)?;
                let op = WriteOp::Edit(EditRecord::SetValue { sheet: sid, cell, value });
                Ok(handle.ask(self.opts.deadline, |reply| WorkerMsg::Write {
                    op,
                    ctx: TraceContext::current(),
                    reply,
                }))
            }
            Request::SetFormula { token, sheet, cell, src } => {
                let (_, handle, sid) = self.resolve_sheet(token, &sheet)?;
                // Pre-validate so coalesced batches stay failure-free and
                // the client gets the parse error, not a batch index.
                Formula::parse(&src)
                    .map_err(|e| ServiceError::BadRequest(format!("formula: {e}")))?;
                let op = WriteOp::Edit(EditRecord::SetFormula { sheet: sid, cell, src });
                Ok(handle.ask(self.opts.deadline, |reply| WorkerMsg::Write {
                    op,
                    ctx: TraceContext::current(),
                    reply,
                }))
            }
            Request::Autofill { token, sheet, src, targets } => {
                let (_, handle, sid) = self.resolve_sheet(token, &sheet)?;
                let op = WriteOp::Autofill { sheet: sid, src, targets };
                Ok(handle.ask(self.opts.deadline, |reply| WorkerMsg::Write {
                    op,
                    ctx: TraceContext::current(),
                    reply,
                }))
            }
            Request::ClearRange { token, sheet, range } => {
                let (_, handle, sid) = self.resolve_sheet(token, &sheet)?;
                let op = WriteOp::Edit(EditRecord::ClearRange { sheet: sid, range });
                Ok(handle.ask(self.opts.deadline, |reply| WorkerMsg::Write {
                    op,
                    ctx: TraceContext::current(),
                    reply,
                }))
            }
            Request::InsertRows { token, sheet, at, n } => {
                self.structural(token, &sheet, StructuralOp::InsertRows { at, n })
            }
            Request::DeleteRows { token, sheet, at, n } => {
                self.structural(token, &sheet, StructuralOp::DeleteRows { at, n })
            }
            Request::InsertCols { token, sheet, at, n } => {
                self.structural(token, &sheet, StructuralOp::InsertCols { at, n })
            }
            Request::DeleteCols { token, sheet, at, n } => {
                self.structural(token, &sheet, StructuralOp::DeleteCols { at, n })
            }
            Request::Get { token, sheet, cell } => {
                let (_, handle, sid) = self.resolve_sheet(token, &sheet)?;
                let snap = Arc::clone(&handle.shared.snapshot.read());
                Ok(Response::Value(snap.value(sid as usize, cell)))
            }
            Request::GetRange { token, sheet, range } => {
                let (_, handle, sid) = self.resolve_sheet(token, &sheet)?;
                let snap = Arc::clone(&handle.shared.snapshot.read());
                Ok(Response::Cells(snap.cells_in(sid as usize, range)))
            }
            Request::Dependents { token, sheet, range } => {
                let (session, handle, sid) = self.resolve_sheet(token, &sheet)?;
                let resp = handle.ask(self.opts.deadline, |reply| WorkerMsg::Graph {
                    dependents: true,
                    sheet: sid,
                    range,
                    ctx: TraceContext::current(),
                    reply,
                });
                Ok(filter_scoped(resp, &session))
            }
            Request::Precedents { token, sheet, range } => {
                let (session, handle, sid) = self.resolve_sheet(token, &sheet)?;
                let resp = handle.ask(self.opts.deadline, |reply| WorkerMsg::Graph {
                    dependents: false,
                    sheet: sid,
                    range,
                    ctx: TraceContext::current(),
                    reply,
                });
                Ok(filter_scoped(resp, &session))
            }
            Request::DirtyCount { token } => {
                let (_, handle) = self.resolve(token)?;
                let snap = Arc::clone(&handle.shared.snapshot.read());
                Ok(Response::Count(snap.dirty))
            }
            Request::Recalc { token } => {
                let (_, handle) = self.resolve(token)?;
                Ok(handle.ask(self.opts.deadline, |reply| WorkerMsg::Recalc {
                    ctx: TraceContext::current(),
                    reply,
                }))
            }
            Request::RecalcRange { token, sheet, range } => {
                let (_, handle, sid) = self.resolve_sheet(token, &sheet)?;
                Ok(handle.ask(self.opts.deadline, |reply| WorkerMsg::Demand {
                    sheet: sid,
                    range,
                    fetch: false,
                    ctx: TraceContext::current(),
                    reply,
                }))
            }
            Request::GetRangeFresh { token, sheet, range } => {
                let (_, handle, sid) = self.resolve_sheet(token, &sheet)?;
                Ok(handle.ask(self.opts.deadline, |reply| WorkerMsg::Demand {
                    sheet: sid,
                    range,
                    fetch: true,
                    ctx: TraceContext::current(),
                    reply,
                }))
            }
            Request::Save { token } => {
                let (_, handle) = self.resolve(token)?;
                Ok(handle.ask(self.opts.deadline, |reply| WorkerMsg::Save {
                    ctx: TraceContext::current(),
                    reply,
                }))
            }
            Request::Stats { token } => {
                let (_, handle) = self.resolve(token)?;
                let snap = Arc::clone(&handle.shared.snapshot.read());
                let stats = &handle.shared.stats;
                Ok(Response::Stats(ServiceStats {
                    epoch: snap.epoch,
                    sheets: snap.sheet_names().len() as u64,
                    cells: snap.cells_total,
                    dirty: snap.dirty,
                    graph_edges: snap.graph_edges,
                    cross_edges: snap.cross_edges,
                    edits: stats.edits.load(Ordering::Relaxed),
                    batches: stats.batches.load(Ordering::Relaxed),
                    recalcs: stats.recalcs.load(Ordering::Relaxed),
                    coalesced: stats.coalesced.load(Ordering::Relaxed),
                    sessions: self.session_count() as u64,
                    busy_rejected: self.refusals.busy.load(Ordering::Relaxed),
                    auth_failures: self.refusals.auth.load(Ordering::Relaxed),
                    scope_denials: self.refusals.scope.load(Ordering::Relaxed),
                    degraded: u64::from(handle.shared.is_degraded()),
                    deadline_expired: self.refusals.deadline.load(Ordering::Relaxed),
                }))
            }
            Request::Metrics { token } => {
                let _ = self.resolve(token)?;
                match &self.svc_obs {
                    Some(o) => Ok(Response::Metrics(Box::new(o.hub.snapshot()))),
                    None => Err(ServiceError::BadRequest("observability disabled".into())),
                }
            }
            Request::TraceDump { token } => {
                let _ = self.resolve(token)?;
                match &self.svc_obs {
                    Some(o) => Ok(Response::Traces(Box::new(o.tracer.dump()))),
                    None => Err(ServiceError::BadRequest("observability disabled".into())),
                }
            }
        }
    }

    /// Queues a structural edit (row/column insert or delete) to the
    /// workbook's writer. Scope is enforced against the *edited* sheet;
    /// the workbook-wide reference rewrite it triggers is part of the
    /// edit's semantics, not a separate access.
    fn structural(
        &self,
        token: u64,
        sheet: &str,
        op: StructuralOp,
    ) -> Result<Response, ServiceError> {
        let (_, handle, sid) = self.resolve_sheet(token, sheet)?;
        let op = WriteOp::Edit(EditRecord::Structural { sheet: sid, op });
        Ok(handle.ask(self.opts.deadline, |reply| WorkerMsg::Write {
            op,
            ctx: TraceContext::current(),
            reply,
        }))
    }

    fn open(
        &self,
        workbook: &str,
        auth: Option<String>,
        scope: Option<Vec<String>>,
    ) -> Result<Response, ServiceError> {
        let key = workbook.to_ascii_lowercase();
        let handle =
            self.handle(&key).ok_or_else(|| ServiceError::NoSuchWorkbook(workbook.to_string()))?;
        if handle.auth.as_deref() != auth.as_deref() {
            return Err(ServiceError::AuthFailed);
        }
        let snap = Arc::clone(&handle.shared.snapshot.read());
        let scope_set: Option<HashSet<String>> = match scope {
            None => None,
            Some(names) => {
                let mut set = HashSet::new();
                for name in names {
                    if snap.sheet_index(&name).is_none() {
                        return Err(ServiceError::NoSuchSheet(name));
                    }
                    set.insert(name.to_ascii_lowercase());
                }
                Some(set)
            }
        };
        let session = Session::new(key, scope_set);
        let visible: Vec<String> =
            snap.sheet_names().into_iter().filter(|s| session.allows(s)).collect();
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let token = SessionToken::mint(seq, self.token_seed).0;
        let count = {
            let mut sessions = self.sessions.lock();
            sessions.insert(token, session);
            sessions.len()
        };
        if let Some(o) = &self.svc_obs {
            o.sessions.set(count as i64);
        }
        Ok(Response::Opened { token, sheets: visible, epoch: snap.epoch })
    }
}

impl Drop for Registry {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Applies the session's sheet scope to a `Ranges` response.
fn filter_scoped(resp: Response, session: &Session) -> Response {
    match resp {
        Response::Ranges(ranges) => Response::Ranges(session.filter_ranges(ranges)),
        other => other,
    }
}

// ---- the worker ---------------------------------------------------------

/// The dense sheet index a record targets, if any.
fn record_sheet(rec: &EditRecord) -> Option<usize> {
    match rec {
        EditRecord::SetValue { sheet, .. }
        | EditRecord::SetFormula { sheet, .. }
        | EditRecord::ClearRange { sheet, .. }
        | EditRecord::Structural { sheet, .. } => Some(*sheet as usize),
        EditRecord::AddSheet { .. } => None,
    }
}

/// The worker's slice of the hub: the coalesce histogram plus a tracer
/// clone for batch/publication spans (engine and WAL spans record
/// through their own attached instrumentation, parented by the ambient
/// context this worker installs per message).
struct WorkerObs {
    coalesce_batch: taco_obs::Histogram,
    /// `taco_degraded_workbooks` — bumped on entering the degraded
    /// state, dropped when a `Save` heals it.
    degraded_books: taco_obs::Gauge,
    tracer: Tracer,
}

/// Publishes a snapshot under a `snapshot.publish` span (ambient parent:
/// the request or batch being served). Payload words: the new epoch and
/// the number of rebuilt sheets.
fn publish_spanned(
    shared: &BookShared,
    wobs: &Option<WorkerObs>,
    wb: &Workbook,
    touched: &BTreeSet<usize>,
) -> u64 {
    let timing = wobs.as_ref().map(|o| (std::time::Instant::now(), o.tracer.now_ns()));
    let epoch = shared.publish(wb, touched);
    if let (Some(o), Some((start, start_ns))) = (wobs, timing) {
        let dur = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        o.tracer.record(
            "snapshot.publish",
            SpanCat::Publish,
            start_ns,
            dur,
            epoch,
            touched.len() as u64,
        );
    }
    epoch
}

/// Enters the degraded state (fleet gauge kept in sync); `reason`
/// reaches refused clients verbatim in the typed error.
fn degrade(shared: &BookShared, wobs: &Option<WorkerObs>, reason: String) {
    if shared.degrade(reason) {
        if let Some(o) = wobs {
            o.degraded_books.add(1);
        }
    }
}

/// Leaves the degraded state after a successful save.
fn heal(shared: &BookShared, wobs: &Option<WorkerObs>) {
    if shared.heal() {
        if let Some(o) = wobs {
            o.degraded_books.sub(1);
        }
    }
}

fn worker_loop(
    rx: Receiver<WorkerMsg>,
    mut backing: Backing,
    shared: Arc<BookShared>,
    opts: ServiceOptions,
    wobs: Option<WorkerObs>,
) {
    'outer: loop {
        let Ok(msg) = rx.recv() else { break };
        let mut pending = Some(msg);
        while let Some(msg) = pending.take() {
            match msg {
                WorkerMsg::Shutdown => break 'outer,
                WorkerMsg::Write { op, ctx, reply } => {
                    let mut writes = vec![(op, ctx, reply)];
                    if opts.coalesce {
                        while writes.len() < opts.max_batch.max(1) {
                            match rx.try_recv() {
                                Ok(WorkerMsg::Write { op, ctx, reply }) => {
                                    writes.push((op, ctx, reply));
                                }
                                Ok(other) => {
                                    pending = Some(other);
                                    break;
                                }
                                Err(_) => break,
                            }
                        }
                    }
                    if let Some(o) = &wobs {
                        o.coalesce_batch.record(writes.len() as u64);
                    }
                    // The batch span parents under the first member's
                    // request; every other member gets a link span in
                    // its own trace carrying the batch's span id, so
                    // each request's tree reaches the batch it rode in.
                    let mut batch_guard = wobs.as_ref().map(|o| {
                        o.tracer.span_guard_under("worker.batch", SpanCat::Request, writes[0].1)
                    });
                    if let (Some(o), Some(g)) = (&wobs, &batch_guard) {
                        let now = o.tracer.now_ns();
                        for (_, mctx, _) in writes.iter().skip(1) {
                            o.tracer.record_at(
                                "worker.coalesced",
                                SpanCat::Request,
                                o.tracer.child_of(*mctx),
                                now,
                                0,
                                g.context().span_id,
                                0,
                            );
                        }
                    }
                    if let Some(g) = batch_guard.as_mut() {
                        // Recorded at drop (inside `apply_writes`,
                        // before replies go out — the batch span must
                        // close before any member request span can).
                        g.a = writes.len() as u64;
                    }
                    apply_writes(&mut backing, &shared, &opts, &wobs, batch_guard, writes);
                }
                WorkerMsg::Graph { dependents, sheet, range, ctx, reply } => {
                    let _span = ctx.enter();
                    let wb = backing.workbook_mut();
                    let resp = if (sheet as usize) >= wb.sheet_count() {
                        Response::Err(ServiceError::NoSuchSheet(format!("#{sheet}")))
                    } else {
                        let sid = SheetId(sheet as usize);
                        let found = if dependents {
                            wb.find_dependents(sid, range)
                        } else {
                            wb.find_precedents(sid, range)
                        };
                        Response::Ranges(
                            found
                                .into_iter()
                                .map(|(s, r)| (wb.sheet_name(s).to_string(), r))
                                .collect(),
                        )
                    };
                    let _ = reply.send(resp);
                }
                WorkerMsg::Recalc { ctx, reply } => {
                    let _span = ctx.enter();
                    let touched = dirty_sheets(backing.workbook());
                    let evaluated = backing.recalculate(opts.recalc_mode) as u64;
                    shared.stats.recalcs.fetch_add(1, Ordering::Relaxed);
                    let epoch = publish_spanned(&shared, &wobs, backing.workbook(), &touched);
                    let _ = reply.send(Response::Recalced { evaluated, epoch });
                }
                WorkerMsg::Demand { sheet, range, fetch, ctx, reply } => {
                    let _span = ctx.enter();
                    let resp = if (sheet as usize) >= backing.workbook().sheet_count() {
                        Response::Err(ServiceError::NoSuchSheet(format!("#{sheet}")))
                    } else {
                        // Any sheet with dirty cells may contribute
                        // needed precedents, so rebuild them all in the
                        // published snapshot.
                        let touched = dirty_sheets(backing.workbook());
                        let sid = SheetId(sheet as usize);
                        match backing.recalc_demand(sid, range, opts.recalc_mode) {
                            Ok(evaluated) => {
                                shared.stats.recalcs.fetch_add(1, Ordering::Relaxed);
                                let epoch =
                                    publish_spanned(&shared, &wobs, backing.workbook(), &touched);
                                if fetch {
                                    let snap = Arc::clone(&shared.snapshot.read());
                                    Response::Cells(snap.cells_in(sheet as usize, range))
                                } else {
                                    Response::Recalced { evaluated: evaluated as u64, epoch }
                                }
                            }
                            Err(e) => {
                                Response::Err(ServiceError::BadRequest(format!("recalc: {e}")))
                            }
                        }
                    };
                    let _ = reply.send(resp);
                }
                WorkerMsg::Save { ctx, reply } => {
                    let _span = ctx.enter();
                    let resp = match &mut backing {
                        Backing::Plain(_) => Response::Err(ServiceError::NotPersistent),
                        Backing::Persistent(p) => match p.compact() {
                            Ok(()) => {
                                // The snapshot now reflects the full live
                                // state and the log is empty: a prior WAL
                                // failure is healed.
                                heal(&shared, &wobs);
                                Response::Saved { wal_records: p.wal_record_count() }
                            }
                            Err(e) => {
                                // A failed snapshot rewrite degrades the
                                // workbook just like a failed WAL append:
                                // the disk can no longer be trusted to
                                // absorb further writes.
                                degrade(&shared, &wobs, format!("snapshot save failed: {e}"));
                                Response::Err(shared.degraded_error())
                            }
                        },
                    };
                    let _ = reply.send(resp);
                }
            }
        }
    }
    // Clean exit: make queued durability real before the thread dies.
    if let Backing::Persistent(p) = &mut backing {
        let _ = p.sync();
    }
}

/// Sheets with work pending — they (and only they) change during the
/// recalculation that follows.
fn dirty_sheets(wb: &Workbook) -> BTreeSet<usize> {
    (0..wb.sheet_count()).filter(|&i| wb.sheet(SheetId(i)).dirty_count() > 0).collect()
}

/// Applies one drained run of writes: consecutive edits in one batch
/// (one `apply_batch`, one recalculation), autofills individually. All
/// replies carry the epoch of the snapshot published at the end.
///
/// Failure discipline (cold paths — requests are pre-validated):
///
/// - an **apply**-stage batch failure applied and routed only the prefix;
///   the suffix re-applies individually so every edit gets a true result;
/// - a **log**-stage failure means the edits are live in memory but the
///   WAL is short: nothing may be re-applied (double-apply) or appended
///   (a hole in the log), so the affected edits are answered with a typed
///   [`ServiceError::Degraded`] and the degraded state rejects further
///   writes until `Save` heals the log by rewriting the snapshot from the
///   live state.
fn apply_writes(
    backing: &mut Backing,
    shared: &Arc<BookShared>,
    opts: &ServiceOptions,
    wobs: &Option<WorkerObs>,
    batch_guard: Option<taco_obs::SpanGuard>,
    writes: Vec<(WriteOp, TraceContext, Sender<Response>)>,
) {
    use taco_engine::BatchStage;
    // (reply, result) pairs deferred until the new epoch is known.
    let mut deferred: Vec<(Sender<Response>, Result<u64, ServiceError>)> = Vec::new();
    let mut touched: BTreeSet<usize> = BTreeSet::new();
    let mut i = 0;
    while i < writes.len() {
        if shared.is_degraded() {
            deferred.push((writes[i].2.clone(), Err(shared.degraded_error())));
            i += 1;
            continue;
        }
        match &writes[i].0 {
            WriteOp::Edit(_) => {
                let start = i;
                while i < writes.len() && matches!(writes[i].0, WriteOp::Edit(_)) {
                    i += 1;
                }
                let run = &writes[start..i];
                let records: Vec<EditRecord> = run
                    .iter()
                    .map(|(op, _, _)| match op {
                        WriteOp::Edit(rec) => rec.clone(),
                        WriteOp::Autofill { .. } => unreachable!("run holds only edits"),
                    })
                    .collect();
                for rec in &records {
                    if let Some(s) = record_sheet(rec) {
                        touched.insert(s);
                    }
                }
                shared.stats.edits.fetch_add(run.len() as u64, Ordering::Relaxed);
                shared.stats.batches.fetch_add(1, Ordering::Relaxed);
                if run.len() > 1 {
                    shared.stats.coalesced.fetch_add(run.len() as u64, Ordering::Relaxed);
                }
                match backing.apply_batch(&records) {
                    Ok(receipt) => {
                        for (s, _) in &receipt.dirty {
                            touched.insert(s.index());
                        }
                        let dirty = receipt.dirty.len() as u64;
                        deferred.extend(run.iter().map(|(_, _, tx)| (tx.clone(), Ok(dirty))));
                    }
                    Err(be) if be.stage == BatchStage::Log => {
                        // Live workbook ahead of the log: acknowledge the
                        // durably-logged prefix, fail the rest, and stop
                        // logging anything further.
                        degrade(shared, wobs, format!("wal append failed: {}", be.error));
                        for (k, (_, _, tx)) in run.iter().enumerate() {
                            if k < be.index {
                                deferred.push((tx.clone(), Ok(0)));
                            } else {
                                deferred.push((tx.clone(), Err(shared.degraded_error())));
                            }
                        }
                    }
                    Err(be) => {
                        // Apply-stage: the prefix applied and routed; the
                        // failing record reports its error; the suffix
                        // re-applies individually so each edit gets a
                        // true result.
                        for (k, (_, _, tx)) in run.iter().enumerate() {
                            if k < be.index {
                                deferred.push((tx.clone(), Ok(0)));
                            } else if k == be.index {
                                deferred.push((
                                    tx.clone(),
                                    Err(ServiceError::BadRequest(be.error.to_string())),
                                ));
                            } else if shared.is_degraded() {
                                deferred.push((tx.clone(), Err(shared.degraded_error())));
                            } else {
                                let result = match backing.apply_batch(&records[k..=k]) {
                                    Ok(receipt) => {
                                        for (s, _) in &receipt.dirty {
                                            touched.insert(s.index());
                                        }
                                        Ok(receipt.dirty.len() as u64)
                                    }
                                    Err(e) if e.stage == BatchStage::Log => {
                                        degrade(
                                            shared,
                                            wobs,
                                            format!("wal append failed: {}", e.error),
                                        );
                                        Err(shared.degraded_error())
                                    }
                                    Err(e) => Err(ServiceError::BadRequest(e.error.to_string())),
                                };
                                deferred.push((tx.clone(), result));
                            }
                        }
                    }
                }
            }
            WriteOp::Autofill { sheet, src, targets } => {
                let (sheet, src, targets) = (*sheet, *src, *targets);
                i += 1;
                shared.stats.edits.fetch_add(1, Ordering::Relaxed);
                shared.stats.batches.fetch_add(1, Ordering::Relaxed);
                touched.insert(sheet as usize);
                let wb_sheets = backing.workbook().sheet_count();
                let result = if (sheet as usize) >= wb_sheets {
                    Err(ServiceError::NoSuchSheet(format!("#{sheet}")))
                } else {
                    match backing.autofill(SheetId(sheet as usize), src, targets) {
                        Ok(receipt) => {
                            for (s, _) in &receipt.dirty {
                                touched.insert(s.index());
                            }
                            Ok(receipt.dirty.len() as u64)
                        }
                        // An I/O failure from a persistent autofill is a
                        // WAL append that died after the fill applied —
                        // same discipline as a log-stage batch failure.
                        Err(e @ taco_store::StoreError::Io { .. }) if backing.is_persistent() => {
                            degrade(shared, wobs, format!("wal append failed: {e}"));
                            Err(shared.degraded_error())
                        }
                        Err(e) => Err(ServiceError::BadRequest(format!("autofill: {e}"))),
                    }
                };
                deferred.push((writes[i - 1].2.clone(), result));
            }
        }
    }
    // One recalculation for everything the run dirtied, then one
    // publication, then the replies (which carry the new epoch).
    touched.extend(dirty_sheets(backing.workbook()));
    backing.recalculate(opts.recalc_mode);
    shared.stats.recalcs.fetch_add(1, Ordering::Relaxed);
    let epoch = publish_spanned(shared, wobs, backing.workbook(), &touched);
    // Close the batch span before any reply: a member request's root
    // span (recorded when its client sees the reply) must fully contain
    // the batch it rode in.
    drop(batch_guard);
    for (tx, result) in deferred {
        let resp = match result {
            Ok(dirty) => Response::Applied { epoch, dirty },
            Err(e) => Response::Err(e),
        };
        let _ = tx.send(resp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: &str) -> Cell {
        Cell::parse_a1(s).unwrap()
    }

    fn demo_registry(coalesce: bool) -> Registry {
        let mut wb = Workbook::with_taco();
        let data = wb.add_sheet("Data").unwrap();
        wb.add_sheet("Secret").unwrap();
        for row in 1..=4u32 {
            wb.set_value(data, Cell::new(1, row), Value::Number(f64::from(row)));
        }
        wb.set_formula(data, c("B1"), "=SUM(A1:A4)").unwrap();
        wb.recalculate(RecalcMode::Serial);
        let reg = Registry::new(ServiceOptions { coalesce, ..ServiceOptions::default() });
        reg.add_workbook("Demo", wb, Some("pw")).unwrap();
        reg
    }

    fn open(reg: &Registry, auth: Option<&str>, scope: Option<Vec<String>>) -> Response {
        reg.execute(Request::Open {
            workbook: "demo".into(),
            auth: auth.map(str::to_string),
            scope,
        })
    }

    #[test]
    fn open_requires_matching_auth() {
        let reg = demo_registry(true);
        assert!(matches!(open(&reg, None, None), Response::Err(ServiceError::AuthFailed)));
        assert!(matches!(open(&reg, Some("wrong"), None), Response::Err(ServiceError::AuthFailed)));
        let Response::Opened { sheets, .. } = open(&reg, Some("pw"), None) else {
            panic!("open must succeed with the right auth");
        };
        assert_eq!(sheets, vec!["Data".to_string(), "Secret".to_string()]);
    }

    #[test]
    fn writes_apply_and_reads_see_published_epochs() {
        for coalesce in [true, false] {
            let reg = demo_registry(coalesce);
            let Response::Opened { token, epoch, .. } = open(&reg, Some("pw"), None) else {
                panic!("open");
            };
            let resp = reg.execute(Request::SetValue {
                token,
                sheet: "Data".into(),
                cell: c("A1"),
                value: Value::Number(100.0),
            });
            let Response::Applied { epoch: e2, .. } = resp else { panic!("applied: {resp:?}") };
            assert!(e2 > epoch);
            // The write's batch recalculated before publishing: the read
            // sees the new SUM immediately.
            let resp = reg.execute(Request::Get { token, sheet: "Data".into(), cell: c("B1") });
            assert_eq!(resp, Response::Value(Value::Number(109.0)), "coalesce={coalesce}");
        }
    }

    #[test]
    fn scope_restricts_sheets_and_results() {
        let reg = demo_registry(true);
        let Response::Opened { token, sheets, .. } =
            open(&reg, Some("pw"), Some(vec!["Data".into()]))
        else {
            panic!("open");
        };
        assert_eq!(sheets, vec!["Data".to_string()]);
        let resp = reg.execute(Request::Get { token, sheet: "Secret".into(), cell: c("A1") });
        assert!(matches!(resp, Response::Err(ServiceError::OutOfScope(_))), "{resp:?}");
        // Unknown scope sheet fails at open.
        assert!(matches!(
            open(&reg, Some("pw"), Some(vec!["Nope".into()])),
            Response::Err(ServiceError::NoSuchSheet(_))
        ));
    }

    #[test]
    fn queries_route_through_the_worker() {
        let reg = demo_registry(true);
        let Response::Opened { token, .. } = open(&reg, Some("pw"), None) else { panic!() };
        let resp = reg.execute(Request::Dependents {
            token,
            sheet: "Data".into(),
            range: Range::cell(c("A2")),
        });
        let Response::Ranges(ranges) = resp else { panic!("{resp:?}") };
        assert!(ranges.iter().any(|(s, r)| s == "Data" && r.contains_cell(c("B1"))));
        let resp = reg.execute(Request::Precedents {
            token,
            sheet: "Data".into(),
            range: Range::cell(c("B1")),
        });
        let Response::Ranges(ranges) = resp else { panic!("{resp:?}") };
        assert!(!ranges.is_empty());
    }

    #[test]
    fn stale_token_and_closed_sessions_are_typed() {
        let reg = demo_registry(true);
        let resp = reg.execute(Request::DirtyCount { token: 12345 });
        assert!(matches!(resp, Response::Err(ServiceError::NoSession)));
        let Response::Opened { token, .. } = open(&reg, Some("pw"), None) else { panic!() };
        assert_eq!(reg.execute(Request::Close { token }), Response::Closed);
        let resp = reg.execute(Request::DirtyCount { token });
        assert!(matches!(resp, Response::Err(ServiceError::NoSession)));
    }

    #[test]
    fn save_on_plain_workbook_is_not_persistent() {
        let reg = demo_registry(true);
        let Response::Opened { token, .. } = open(&reg, Some("pw"), None) else { panic!() };
        let resp = reg.execute(Request::Save { token });
        assert!(matches!(resp, Response::Err(ServiceError::NotPersistent)));
    }

    #[test]
    fn shutdown_refuses_new_requests_and_joins_workers() {
        let reg = demo_registry(true);
        let Response::Opened { token, .. } = open(&reg, Some("pw"), None) else { panic!() };
        reg.shutdown();
        let resp = reg.execute(Request::DirtyCount { token });
        assert!(matches!(resp, Response::Err(ServiceError::ShuttingDown)));
        reg.shutdown(); // idempotent
    }

    #[test]
    fn snapshot_reuses_untouched_sheet_maps() {
        let reg = demo_registry(true);
        let Response::Opened { token, .. } = open(&reg, Some("pw"), None) else { panic!() };
        let before = reg.snapshot("demo").unwrap();
        reg.execute(Request::SetValue {
            token,
            sheet: "Data".into(),
            cell: c("A9"),
            value: Value::Number(1.0),
        });
        let after = reg.snapshot("demo").unwrap();
        assert!(after.epoch > before.epoch);
        // "Secret" was untouched: its cell map Arc is shared.
        let b = &before.sheets[1].cells;
        let a = &after.sheets[1].cells;
        assert!(Arc::ptr_eq(a, b), "untouched sheet must be copy-on-write shared");
        assert!(!Arc::ptr_eq(&after.sheets[0].cells, &before.sheets[0].cells));
        // The sheet set did not change: the name index and every sheet
        // name Arc are shared with the previous epoch, not re-cloned.
        assert!(Arc::ptr_eq(&after.index, &before.index), "unchanged sheet set shares the index");
        for (sa, sb) in after.sheets.iter().zip(before.sheets.iter()) {
            assert!(Arc::ptr_eq(&sa.name, &sb.name), "sheet names are epoch-shared");
        }
    }
}
