//! Typed clients: one [`Client`] surface over two transports — direct
//! in-process calls against a shared [`Registry`], or the framed TCP
//! wire. The load generator and the benches drive both through the same
//! [`Transport`] trait, so in-process vs TCP comparisons exercise
//! identical request streams.

use crate::protocol::{Request, Response, ServiceStats};
use crate::registry::Registry;
use crate::server::{read_handshake, write_handshake};
use crate::ServiceError;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;
use taco_formula::Value;
use taco_grid::{Cell, Range};
use taco_obs::{MetricsSnapshot, TraceContext, TraceDump};
use taco_store::{read_frame, write_frame, DEFAULT_MAX_FRAME};

/// A way to deliver a [`Request`] and receive its [`Response`].
pub trait Transport {
    /// One request/response exchange.
    fn call(&mut self, req: Request) -> Result<Response, ServiceError> {
        self.call_traced(req, None)
    }

    /// One exchange carrying an optional client trace context — the
    /// server parents the request's root span under it, so every request
    /// a client sends with the same context lands in one trace. The
    /// in-process transport passes it straight through; the TCP
    /// transport wraps the request in the traced wire extension.
    fn call_traced(
        &mut self,
        req: Request,
        ctx: Option<TraceContext>,
    ) -> Result<Response, ServiceError>;

    /// Re-establishes the underlying channel after a failure: the TCP
    /// transport re-dials and re-handshakes its remembered address.
    /// Transports with nothing to re-establish (in-process) succeed as a
    /// no-op.
    fn reconnect(&mut self) -> Result<(), ServiceError> {
        Ok(())
    }
}

/// The in-process transport: requests execute on the calling thread
/// against a shared registry (reads hit the epoch snapshot directly;
/// writes enqueue on the workbook's writer and block for the reply).
pub struct InProc {
    registry: Arc<Registry>,
}

impl InProc {
    /// A transport over `registry`.
    pub fn new(registry: Arc<Registry>) -> Self {
        InProc { registry }
    }
}

impl Transport for InProc {
    fn call_traced(
        &mut self,
        req: Request,
        ctx: Option<TraceContext>,
    ) -> Result<Response, ServiceError> {
        Ok(self.registry.execute_traced(req, ctx, 0))
    }
}

/// The TCP transport: one connection, one frame per request and reply.
pub struct Tcp {
    stream: TcpStream,
    addr: SocketAddr,
    max_frame: u64,
}

impl Tcp {
    /// Connects and handshakes.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ServiceError> {
        let mut stream = TcpStream::connect(addr)?;
        write_handshake(&mut stream)?;
        read_handshake(&mut stream)?;
        let addr = stream.peer_addr()?;
        Ok(Tcp { stream, addr, max_frame: DEFAULT_MAX_FRAME })
    }
}

impl Transport for Tcp {
    fn call_traced(
        &mut self,
        req: Request,
        ctx: Option<TraceContext>,
    ) -> Result<Response, ServiceError> {
        let bytes = match ctx {
            Some(ctx) => req.encode_traced(ctx),
            None => req.encode(),
        };
        write_frame(&mut self.stream, &bytes)?;
        let payload = read_frame(&mut self.stream, self.max_frame)?;
        Ok(Response::decode(&payload)?)
    }

    fn reconnect(&mut self) -> Result<(), ServiceError> {
        let fresh = Tcp::connect(self.addr)?;
        self.stream = fresh.stream;
        Ok(())
    }
}

/// Jittered exponential backoff for transient service failures
/// (connection drops, `Busy` refusals, expired deadlines). Attached to a
/// [`Client`] with [`Client::set_retry`]; retries apply **only to
/// idempotent requests** — a write whose fate is unknown (the connection
/// died mid-exchange, or its deadline expired) is never re-sent, because
/// the first copy may have applied.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first attempt (so `max_retries + 1` tries).
    pub max_retries: u32,
    /// First backoff; doubles per retry up to [`RetryPolicy::max_delay`].
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Seed for the deterministic jitter stream (each delay is drawn
    /// uniformly from `[delay/2, delay]` so synchronized clients spread
    /// out).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 6,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(500),
            seed: 0x5eed_cafe,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `attempt` (0-based), jittered by
    /// `state` (advanced by the caller between draws).
    fn delay(&self, attempt: u32, state: u64) -> Duration {
        let exp = self.base_delay.saturating_mul(2u32.saturating_pow(attempt));
        let capped = exp.min(self.max_delay).as_nanos() as u64;
        let jittered = capped / 2 + splitmix64(state) % (capped / 2 + 1);
        Duration::from_nanos(jittered)
    }
}

/// SplitMix64 — the same tiny deterministic generator the workload crate
/// uses; good enough to decorrelate retry timing.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Requests safe to send twice: reads, recalculations, saves, session
/// management. Every mutation (`SetValue`… structural edits) is excluded
/// — re-sending one after an unknown outcome could apply it twice.
fn idempotent(req: &Request) -> bool {
    !matches!(
        req,
        Request::SetValue { .. }
            | Request::SetFormula { .. }
            | Request::Autofill { .. }
            | Request::ClearRange { .. }
            | Request::InsertRows { .. }
            | Request::DeleteRows { .. }
            | Request::InsertCols { .. }
            | Request::DeleteCols { .. }
    )
}

/// Patches the session token into a request — after an automatic
/// re-`Open`, the retried request must carry the *new* session.
fn set_token(req: &mut Request, new: u64) {
    match req {
        Request::Open { .. } => {}
        Request::Close { token }
        | Request::SetValue { token, .. }
        | Request::SetFormula { token, .. }
        | Request::Autofill { token, .. }
        | Request::ClearRange { token, .. }
        | Request::Get { token, .. }
        | Request::GetRange { token, .. }
        | Request::Dependents { token, .. }
        | Request::Precedents { token, .. }
        | Request::DirtyCount { token }
        | Request::Recalc { token }
        | Request::Save { token }
        | Request::Stats { token }
        | Request::RecalcRange { token, .. }
        | Request::GetRangeFresh { token, .. }
        | Request::InsertRows { token, .. }
        | Request::DeleteRows { token, .. }
        | Request::InsertCols { token, .. }
        | Request::DeleteCols { token, .. }
        | Request::Metrics { token }
        | Request::TraceDump { token } => *token = new,
    }
}

/// A typed session client over any transport. Open a workbook first;
/// every other method carries the session token automatically.
pub struct Client<T: Transport> {
    transport: T,
    token: Option<u64>,
    sheets: Vec<String>,
    trace: Option<TraceContext>,
    retry: Option<RetryPolicy>,
    /// Jitter stream state; advanced per backoff draw.
    jitter: u64,
    /// Retries attempted over the client's lifetime (reconnects and
    /// re-sends, not first attempts).
    retries: u64,
    /// The last successful `open`'s arguments, remembered so the retry
    /// path can re-open after the server closed our sessions (it does so
    /// whenever a connection dies).
    open_params: Option<(String, Option<String>, Option<Vec<String>>)>,
}

/// [`Client`] over the in-process transport.
pub type InProcClient = Client<InProc>;
/// [`Client`] over the TCP transport.
pub type TcpClient = Client<Tcp>;

impl InProcClient {
    /// An in-process client against a shared registry.
    pub fn in_process(registry: Arc<Registry>) -> Self {
        Client::over(InProc::new(registry))
    }
}

impl TcpClient {
    /// Connects a TCP client.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ServiceError> {
        Ok(Client::over(Tcp::connect(addr)?))
    }
}

impl<T: Transport> Client<T> {
    /// Wraps a transport.
    pub fn over(transport: T) -> Self {
        Client {
            transport,
            token: None,
            sheets: Vec::new(),
            trace: None,
            retry: None,
            jitter: 0,
            retries: 0,
            open_params: None,
        }
    }

    /// Turns on automatic retry: transient failures (`Busy`, a dropped
    /// connection, an expired deadline) on **idempotent** requests are
    /// retried with jittered exponential backoff, transparently
    /// reconnecting and re-opening the session as needed. Mutations are
    /// never retried — their first attempt may have applied.
    pub fn set_retry(&mut self, policy: RetryPolicy) {
        self.jitter = policy.seed;
        self.retry = Some(policy);
    }

    /// Turns automatic retry back off.
    pub fn clear_retry(&mut self) {
        self.retry = None;
    }

    /// Retries this client has attempted (0 while every call succeeds on
    /// its first try).
    pub fn retries_attempted(&self) -> u64 {
        self.retries
    }

    /// Attaches a sticky trace context: every subsequent request travels
    /// with it, so the server parents each request's span tree under one
    /// client-chosen trace id (fetch the assembled tree later with
    /// [`Client::trace_dump`]). Pass any tracer's `new_root()` result,
    /// or build ids by hand. Cleared by [`Client::clear_trace`].
    pub fn set_trace(&mut self, ctx: TraceContext) {
        self.trace = Some(ctx);
    }

    /// Stops attaching a trace context to outgoing requests.
    pub fn clear_trace(&mut self) {
        self.trace = None;
    }

    /// The session's visible sheets (filled by [`Client::open`]).
    pub fn sheets(&self) -> &[String] {
        &self.sheets
    }

    /// The raw session token, once open.
    pub fn token(&self) -> Option<u64> {
        self.token
    }

    fn need_token(&self) -> Result<u64, ServiceError> {
        self.token.ok_or(ServiceError::NoSession)
    }

    fn call(&mut self, req: Request) -> Result<Response, ServiceError> {
        let Some(policy) = self.retry else {
            return match self.transport.call_traced(req, self.trace)? {
                Response::Err(e) => Err(e),
                resp => Ok(resp),
            };
        };
        let retryable = idempotent(&req);
        let mut req = req;
        let mut attempt: u32 = 0;
        loop {
            // `dead` distinguishes a transport failure (the connection
            // cannot be trusted any more) from a well-formed error reply
            // (the stream is still in sync).
            let (err, dead) = match self.transport.call_traced(req.clone(), self.trace) {
                Ok(Response::Err(e)) => (e, false),
                Ok(resp) => return Ok(resp),
                Err(e) => (e, true),
            };
            if !retryable || attempt >= policy.max_retries {
                return Err(err);
            }
            // Which failures are worth another try — and what repair
            // each needs first:
            //  - a dead transport (I/O error, torn frame): reconnect,
            //    and re-open because the server closed our sessions
            //    when the connection died;
            //  - `Busy`: the server answered and will close the socket
            //    next, so same treatment after a backoff;
            //  - `NoSession` with remembered open parameters: the
            //    session evaporated server-side — re-open on the live
            //    connection;
            //  - `DeadlineExceeded`: the workbook's writer is slow, not
            //    gone — just back off and re-ask.
            // Everything else (auth, scope, bad requests, degraded
            // workbooks) is deterministic: retrying cannot help.
            let reconnect = match &err {
                _ if dead => true,
                ServiceError::Busy => true,
                ServiceError::DeadlineExceeded => false,
                ServiceError::NoSession if self.open_params.is_some() => false,
                _ => return Err(err),
            };
            self.retries += 1;
            self.jitter = splitmix64(self.jitter);
            std::thread::sleep(policy.delay(attempt, self.jitter));
            attempt += 1;
            if reconnect && self.transport.reconnect().is_err() {
                // Still unreachable: burn this attempt and loop — the
                // next call_traced fails fast and backs off again.
                continue;
            }
            // A fresh connection (or an evaporated session) needs a new
            // session before the retried request can carry its token.
            let needs_reopen = (reconnect || matches!(err, ServiceError::NoSession))
                && !matches!(req, Request::Open { .. });
            if needs_reopen {
                match self.reopen() {
                    Ok(()) => {
                        if let Some(token) = self.token {
                            set_token(&mut req, token);
                        }
                    }
                    Err(_) => continue,
                }
            }
        }
    }

    /// Re-opens the remembered session after a reconnect (single
    /// attempt; the retry loop provides the repetition).
    fn reopen(&mut self) -> Result<(), ServiceError> {
        let (workbook, auth, scope) = self.open_params.clone().ok_or(ServiceError::NoSession)?;
        match self.transport.call_traced(Request::Open { workbook, auth, scope }, self.trace)? {
            Response::Opened { token, sheets, .. } => {
                self.token = Some(token);
                self.sheets = sheets;
                Ok(())
            }
            Response::Err(e) => Err(e),
            _ => Err(ServiceError::Protocol("expected Opened")),
        }
    }

    /// Opens a session; returns the visible sheet names.
    pub fn open(
        &mut self,
        workbook: &str,
        auth: Option<&str>,
        scope: Option<&[&str]>,
    ) -> Result<Vec<String>, ServiceError> {
        let params = (
            workbook.to_string(),
            auth.map(str::to_string),
            scope.map(|s| s.iter().map(|n| n.to_string()).collect::<Vec<String>>()),
        );
        let resp = self.call(Request::Open {
            workbook: params.0.clone(),
            auth: params.1.clone(),
            scope: params.2.clone(),
        })?;
        match resp {
            Response::Opened { token, sheets, .. } => {
                self.token = Some(token);
                self.sheets = sheets.clone();
                self.open_params = Some(params);
                Ok(sheets)
            }
            _ => Err(ServiceError::Protocol("expected Opened")),
        }
    }

    /// Closes the session (idempotent).
    pub fn close(&mut self) -> Result<(), ServiceError> {
        let Some(token) = self.token.take() else { return Ok(()) };
        self.sheets.clear();
        self.open_params = None;
        match self.call(Request::Close { token })? {
            Response::Closed => Ok(()),
            _ => Err(ServiceError::Protocol("expected Closed")),
        }
    }

    fn applied(&mut self, req: Request) -> Result<u64, ServiceError> {
        match self.call(req)? {
            Response::Applied { dirty, .. } => Ok(dirty),
            _ => Err(ServiceError::Protocol("expected Applied")),
        }
    }

    /// Sets a pure value; returns the dirty ranges its batch routed.
    pub fn set_value(
        &mut self,
        sheet: &str,
        cell: Cell,
        value: Value,
    ) -> Result<u64, ServiceError> {
        let token = self.need_token()?;
        self.applied(Request::SetValue { token, sheet: sheet.to_string(), cell, value })
    }

    /// Sets a formula (leading `=` optional).
    pub fn set_formula(&mut self, sheet: &str, cell: Cell, src: &str) -> Result<u64, ServiceError> {
        let token = self.need_token()?;
        self.applied(Request::SetFormula {
            token,
            sheet: sheet.to_string(),
            cell,
            src: src.to_string(),
        })
    }

    /// Autofills the formula at `src` over `targets`.
    pub fn autofill(
        &mut self,
        sheet: &str,
        src: Cell,
        targets: Range,
    ) -> Result<u64, ServiceError> {
        let token = self.need_token()?;
        self.applied(Request::Autofill { token, sheet: sheet.to_string(), src, targets })
    }

    /// Clears every cell in `range`.
    pub fn clear_range(&mut self, sheet: &str, range: Range) -> Result<u64, ServiceError> {
        let token = self.need_token()?;
        self.applied(Request::ClearRange { token, sheet: sheet.to_string(), range })
    }

    /// Inserts `n` rows before row `at` — a workbook-wide structural
    /// edit: formulas on *other* sheets that reference this one are
    /// rewritten too.
    pub fn insert_rows(&mut self, sheet: &str, at: u32, n: u32) -> Result<u64, ServiceError> {
        let token = self.need_token()?;
        self.applied(Request::InsertRows { token, sheet: sheet.to_string(), at, n })
    }

    /// Deletes the rows `[at, at + n)`; references wholly inside the
    /// deleted band become `#REF!`, everywhere in the workbook.
    pub fn delete_rows(&mut self, sheet: &str, at: u32, n: u32) -> Result<u64, ServiceError> {
        let token = self.need_token()?;
        self.applied(Request::DeleteRows { token, sheet: sheet.to_string(), at, n })
    }

    /// Inserts `n` columns before column `at`; see
    /// [`Client::insert_rows`].
    pub fn insert_cols(&mut self, sheet: &str, at: u32, n: u32) -> Result<u64, ServiceError> {
        let token = self.need_token()?;
        self.applied(Request::InsertCols { token, sheet: sheet.to_string(), at, n })
    }

    /// Deletes the columns `[at, at + n)`; see [`Client::delete_rows`].
    pub fn delete_cols(&mut self, sheet: &str, at: u32, n: u32) -> Result<u64, ServiceError> {
        let token = self.need_token()?;
        self.applied(Request::DeleteCols { token, sheet: sheet.to_string(), at, n })
    }

    /// Reads one cell (snapshot read — never blocks on writers).
    pub fn get(&mut self, sheet: &str, cell: Cell) -> Result<Value, ServiceError> {
        let token = self.need_token()?;
        match self.call(Request::Get { token, sheet: sheet.to_string(), cell })? {
            Response::Value(v) => Ok(v),
            _ => Err(ServiceError::Protocol("expected Value")),
        }
    }

    /// Reads every non-empty cell in `range` (snapshot read).
    pub fn get_range(
        &mut self,
        sheet: &str,
        range: Range,
    ) -> Result<Vec<(Cell, Value)>, ServiceError> {
        let token = self.need_token()?;
        match self.call(Request::GetRange { token, sheet: sheet.to_string(), range })? {
            Response::Cells(cells) => Ok(cells),
            _ => Err(ServiceError::Protocol("expected Cells")),
        }
    }

    fn ranges(&mut self, req: Request) -> Result<Vec<(String, Range)>, ServiceError> {
        match self.call(req)? {
            Response::Ranges(r) => Ok(r),
            _ => Err(ServiceError::Protocol("expected Ranges")),
        }
    }

    /// All transitive dependents of `sheet!range`, across sheets.
    pub fn dependents(
        &mut self,
        sheet: &str,
        range: Range,
    ) -> Result<Vec<(String, Range)>, ServiceError> {
        let token = self.need_token()?;
        self.ranges(Request::Dependents { token, sheet: sheet.to_string(), range })
    }

    /// All transitive precedents of `sheet!range`, across sheets.
    pub fn precedents(
        &mut self,
        sheet: &str,
        range: Range,
    ) -> Result<Vec<(String, Range)>, ServiceError> {
        let token = self.need_token()?;
        self.ranges(Request::Precedents { token, sheet: sheet.to_string(), range })
    }

    /// Cells awaiting recalculation (snapshot read).
    pub fn dirty_count(&mut self) -> Result<u64, ServiceError> {
        let token = self.need_token()?;
        match self.call(Request::DirtyCount { token })? {
            Response::Count(n) => Ok(n),
            _ => Err(ServiceError::Protocol("expected Count")),
        }
    }

    /// Forces a recalculation; doubles as the write-queue barrier (it
    /// runs after every write queued before it). Returns the number of
    /// cells evaluated.
    pub fn recalc(&mut self) -> Result<u64, ServiceError> {
        let token = self.need_token()?;
        match self.call(Request::Recalc { token })? {
            Response::Recalced { evaluated, .. } => Ok(evaluated),
            _ => Err(ServiceError::Protocol("expected Recalced")),
        }
    }

    /// Demand-driven recalculation: evaluates only the transitive dirty
    /// precedents of `sheet!range`, leaving every other dirty cell lazily
    /// dirty. A write-queue barrier like [`Client::recalc`]. Returns the
    /// number of cells evaluated.
    pub fn recalc_range(&mut self, sheet: &str, range: Range) -> Result<u64, ServiceError> {
        let token = self.need_token()?;
        match self.call(Request::RecalcRange { token, sheet: sheet.to_string(), range })? {
            Response::Recalced { evaluated, .. } => Ok(evaluated),
            _ => Err(ServiceError::Protocol("expected Recalced")),
        }
    }

    /// Reads every non-empty cell of `range` *after* a demand-driven
    /// recalculation of that viewport — unlike [`Client::get_range`],
    /// which reads the current snapshot as-is, the values returned here
    /// are guaranteed recalculation-fresh for the viewport.
    pub fn get_range_fresh(
        &mut self,
        sheet: &str,
        range: Range,
    ) -> Result<Vec<(Cell, Value)>, ServiceError> {
        let token = self.need_token()?;
        match self.call(Request::GetRangeFresh { token, sheet: sheet.to_string(), range })? {
            Response::Cells(cells) => Ok(cells),
            _ => Err(ServiceError::Protocol("expected Cells")),
        }
    }

    /// Folds the workbook's WAL into its snapshot file (persistent
    /// workbooks only). Returns the WAL records remaining.
    pub fn save(&mut self) -> Result<u64, ServiceError> {
        let token = self.need_token()?;
        match self.call(Request::Save { token })? {
            Response::Saved { wal_records } => Ok(wal_records),
            _ => Err(ServiceError::Protocol("expected Saved")),
        }
    }

    /// Service counters and workbook totals.
    pub fn stats(&mut self) -> Result<ServiceStats, ServiceError> {
        let token = self.need_token()?;
        match self.call(Request::Stats { token })? {
            Response::Stats(s) => Ok(s),
            _ => Err(ServiceError::Protocol("expected Stats")),
        }
    }

    /// A full observability snapshot — every counter, gauge, histogram
    /// (with derived p50/p90/p99), and the slow-op log. Render it with
    /// [`MetricsSnapshot::to_prometheus`] or [`MetricsSnapshot::to_json`].
    /// Fails with `BadRequest` when the server runs with observability
    /// disabled ([`crate::ServiceOptions::obs`]).
    ///
    /// [`MetricsSnapshot::to_prometheus`]: taco_obs::MetricsSnapshot::to_prometheus
    /// [`MetricsSnapshot::to_json`]: taco_obs::MetricsSnapshot::to_json
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, ServiceError> {
        let token = self.need_token()?;
        match self.call(Request::Metrics { token })? {
            Response::Metrics(m) => Ok(*m),
            _ => Err(ServiceError::Protocol("expected Metrics")),
        }
    }

    /// A snapshot of the server's span rings: the recent-span ring plus
    /// the slow-request log, with full trace/span/parent ids. Walk it
    /// with [`TraceDump::children_of`] or render it with
    /// [`TraceDump::to_chrome_json`]. Fails with `BadRequest` when the
    /// server runs with observability disabled.
    ///
    /// [`TraceDump::children_of`]: taco_obs::TraceDump::children_of
    /// [`TraceDump::to_chrome_json`]: taco_obs::TraceDump::to_chrome_json
    pub fn trace_dump(&mut self) -> Result<TraceDump, ServiceError> {
        let token = self.need_token()?;
        match self.call(Request::TraceDump { token })? {
            Response::Traces(t) => Ok(*t),
            _ => Err(ServiceError::Protocol("expected Traces")),
        }
    }
}
