//! Property-based tests for the rectangle algebra invariants that the
//! compressed-graph algorithms depend on.

use proptest::prelude::*;
use taco_grid::{Cell, Offset, Range};

fn arb_cell() -> impl Strategy<Value = Cell> {
    (1u32..200, 1u32..200).prop_map(|(c, r)| Cell::new(c, r))
}

fn arb_range() -> impl Strategy<Value = Range> {
    (arb_cell(), arb_cell()).prop_map(|(a, b)| Range::new(a, b))
}

proptest! {
    #[test]
    fn bounding_union_contains_both(a in arb_range(), b in arb_range()) {
        let u = a.bounding_union(&b);
        prop_assert!(u.contains(&a));
        prop_assert!(u.contains(&b));
    }

    #[test]
    fn bounding_union_commutes_and_is_idempotent(a in arb_range(), b in arb_range()) {
        prop_assert_eq!(a.bounding_union(&b), b.bounding_union(&a));
        prop_assert_eq!(a.bounding_union(&a), a);
    }

    #[test]
    fn intersect_is_subset_of_both(a in arb_range(), b in arb_range()) {
        if let Some(i) = a.intersect(&b) {
            prop_assert!(a.contains(&i));
            prop_assert!(b.contains(&i));
            prop_assert!(a.overlaps(&b));
        } else {
            prop_assert!(!a.overlaps(&b));
        }
    }

    #[test]
    fn subtract_partitions_area(a in arb_range(), b in arb_range()) {
        let pieces = a.subtract(&b);
        let covered = a.intersect(&b).map_or(0, |i| i.area());
        let rest: u64 = pieces.iter().map(Range::area).sum();
        prop_assert_eq!(rest + covered, a.area());
        for (i, p) in pieces.iter().enumerate() {
            prop_assert!(a.contains(p));
            prop_assert!(!p.overlaps(&b));
            for q in pieces.iter().skip(i + 1) {
                prop_assert!(!p.overlaps(q));
            }
        }
    }

    #[test]
    fn subtract_all_leaves_no_cover_overlap(
        a in arb_range(),
        covers in prop::collection::vec(arb_range(), 0..6),
    ) {
        let pieces = a.subtract_all(covers.iter());
        for p in &pieces {
            prop_assert!(a.contains(p));
            for c in &covers {
                prop_assert!(!p.overlaps(c));
            }
        }
        // Every uncovered cell of `a` must appear in exactly one piece.
        if a.area() <= 400 {
            for cell in a.cells() {
                let uncovered = !covers.iter().any(|c| c.contains_cell(cell));
                let hits = pieces.iter().filter(|p| p.contains_cell(cell)).count();
                prop_assert_eq!(hits, usize::from(uncovered));
            }
        }
    }

    #[test]
    fn shift_preserves_shape(a in arb_range(), dc in -50i64..50, dr in -50i64..50) {
        if let Ok(s) = a.shift(Offset::new(dc, dr)) {
            prop_assert_eq!(s.width(), a.width());
            prop_assert_eq!(s.height(), a.height());
            prop_assert_eq!(s.shift(Offset::new(-dc, -dr)).unwrap(), a);
        }
    }

    #[test]
    fn transpose_involution_preserves_area(a in arb_range()) {
        prop_assert_eq!(a.transpose().transpose(), a);
        prop_assert_eq!(a.transpose().area(), a.area());
    }

    #[test]
    fn a1_round_trip(a in arb_range()) {
        prop_assert_eq!(Range::parse_a1(&a.to_a1()).unwrap(), a);
    }

    #[test]
    fn offset_from_inverts_offset(a in arb_cell(), b in arb_cell()) {
        let o = a.offset_from(b);
        prop_assert_eq!(b.offset(o).unwrap(), a);
        prop_assert_eq!(a.offset(-o).unwrap(), b);
    }
}
