//! Deterministic corner-case tests for A1 geometry: grid bounds, `$`
//! absolute markers, sheet-qualified references, single-cell ranges, and
//! malformed inputs (which must return `Err`, never panic). Complements
//! the property tests in `prop_geometry.rs` with exact goldens.

use taco_grid::a1::{col_to_letters, letters_to_col, CellRef, QualifiedRef, RangeRef, SheetRef};
use taco_grid::{Cell, GridError, Range, MAX_COL, MAX_ROW};

#[test]
fn column_letters_round_trip_at_the_edges() {
    for (col, letters) in
        [(1, "A"), (26, "Z"), (27, "AA"), (52, "AZ"), (702, "ZZ"), (703, "AAA"), (MAX_COL, "XFD")]
    {
        assert_eq!(col_to_letters(col), letters);
        assert_eq!(letters_to_col(letters).unwrap(), col);
    }
    // Lowercase is accepted on input.
    assert_eq!(letters_to_col("xfd").unwrap(), MAX_COL);
}

#[test]
fn bounds_are_enforced_not_panicked() {
    // The exact last cell of the grid parses…
    let last = format!("XFD{MAX_ROW}");
    assert_eq!(Cell::parse_a1(&last).unwrap(), Cell::new(MAX_COL, MAX_ROW));
    assert_eq!(Cell::new(MAX_COL, MAX_ROW).to_a1(), last);
    // …and one past it, in either coordinate, is an error.
    assert!(matches!(letters_to_col("XFE"), Err(GridError::BadA1(_))));
    assert!(Cell::parse_a1(&format!("XFD{}", u64::from(MAX_ROW) + 1)).is_err());
    assert!(Cell::parse_a1("A0").is_err());
    assert!(Cell::try_new(0, 1).is_err());
    assert!(Cell::try_new(1, 0).is_err());
    assert!(Cell::try_new(i64::from(MAX_COL) + 1, 1).is_err());
    assert!(Cell::try_new(1, i64::from(MAX_ROW) + 1).is_err());
    // Row numbers beyond u64 must not overflow the parser either.
    assert!(Cell::parse_a1("A99999999999999999999999999").is_err());
}

#[test]
fn absolute_markers_parse_and_print() {
    let r = CellRef::parse("$A$1").unwrap();
    assert_eq!(r.cell, Cell::new(1, 1));
    assert!(r.col_abs && r.row_abs);
    assert!(r.is_fixed());
    assert_eq!(r.to_string(), "$A$1");

    let mixed = CellRef::parse("B$4").unwrap();
    assert!(!mixed.col_abs && mixed.row_abs);
    assert_eq!(mixed.to_string(), "B$4");
    let mixed = CellRef::parse("$B4").unwrap();
    assert!(mixed.col_abs && !mixed.row_abs);
    assert_eq!(mixed.to_string(), "$B4");

    // Mixed-flag range: fixed head, relative tail (`SUM($B$1:B4)` shape).
    let rr = RangeRef::parse("$B$1:B4").unwrap();
    assert!(rr.head.is_fixed());
    assert!(rr.tail.is_relative());
    assert_eq!(rr.range(), Range::parse_a1("B1:B4").unwrap());
    assert_eq!(rr.to_string(), "$B$1:B4");
}

#[test]
fn absolute_markers_pin_coordinates_under_autofill() {
    let rr = RangeRef::parse("$B$1:B4").unwrap();
    // Fill two rows down: the fixed head stays, the relative tail slides.
    let filled = rr.autofill(0, 2).unwrap();
    assert_eq!(filled.to_string(), "$B$1:B6");
    // A fully absolute ref never moves.
    let pinned = RangeRef::parse("$F$1:$G$3").unwrap();
    assert_eq!(pinned.autofill(7, 1000).unwrap(), pinned);
    // A relative ref that would slide off the grid reports None.
    assert!(RangeRef::parse("A1").unwrap().autofill(0, -1).is_none());
    assert!(RangeRef::parse("A1").unwrap().autofill(-1, 0).is_none());
    assert!(RangeRef::parse("XFD1").unwrap().autofill(1, 0).is_none());
}

#[test]
fn plain_parsers_reject_absolute_markers() {
    // Cell/Range::parse_a1 are the geometry-only entry points; `$` belongs
    // to the reference layer (taco_grid::a1).
    assert!(Cell::parse_a1("$A$1").is_err());
    assert!(Range::parse_a1("$A$1:B2").is_err());
}

#[test]
fn single_cell_ranges_are_degenerate_rectangles() {
    let r = Range::parse_a1("D4").unwrap();
    assert!(r.is_cell());
    assert_eq!(r, Range::cell(Cell::new(4, 4)));
    assert_eq!((r.width(), r.height(), r.area()), (1, 1, 1));
    assert_eq!(r.head(), r.tail());
    assert_eq!(r.to_a1(), "D4");
    // A collapsed colon form normalizes to the same thing but prints with
    // its corners.
    let colon = Range::parse_a1("D4:D4").unwrap();
    assert_eq!(colon, r);
    // Corner order never matters.
    assert_eq!(Range::parse_a1("B5:A1").unwrap(), Range::parse_a1("A1:B5").unwrap());
    // RangeRef::parse of a single cell knows it is one.
    assert!(RangeRef::parse("D4").unwrap().is_cell());
}

#[test]
fn malformed_inputs_error_cleanly() {
    for bad in [
        "",
        " ",
        "A",
        "1",
        "11A",
        "A1A",
        "A-1",
        "A 1",
        "$",
        "$$A$1",
        "A$",
        "$1",
        "ABCDEFGH1",
        "A1:",
        ":A1",
        "A1:B2:C3",
        "A1:1B",
        "Ä1",
        "A1\u{200b}",
        "a1 :b2",
    ] {
        assert!(Cell::parse_a1(bad).is_err(), "Cell::parse_a1({bad:?}) should be Err");
        assert!(Range::parse_a1(bad).is_err(), "Range::parse_a1({bad:?}) should be Err");
        assert!(RangeRef::parse(bad).is_err(), "RangeRef::parse({bad:?}) should be Err");
    }
    // Whitespace is not trimmed implicitly.
    assert!(CellRef::parse(" A1").is_err());
    assert!(CellRef::parse("A1 ").is_err());
}

#[test]
fn sheet_qualified_golden_forms() {
    // (input, sheet name, geometric range, canonical display)
    for (src, sheet, range, display) in [
        ("Sheet1!A1", "Sheet1", "A1", "Sheet1!A1"),
        ("Sheet1!$B$2:C9", "Sheet1", "B2:C9", "Sheet1!$B$2:C9"),
        ("'My Sheet'!A1:B3", "My Sheet", "A1:B3", "'My Sheet'!A1:B3"),
        ("'Q4 2023 Totals'!$D$4", "Q4 2023 Totals", "D4", "'Q4 2023 Totals'!$D$4"),
        // Unnecessary quoting is accepted and normalizes away.
        ("'Sheet1'!A1", "Sheet1", "A1", "Sheet1!A1"),
        // Escaped apostrophe round-trips.
        ("'it''s 2024'!A1", "it's 2024", "A1", "'it''s 2024'!A1"),
        // Reversed corners normalize under a qualifier too.
        ("data!B5:A1", "data", "A1:B5", "data!A1:B5"),
    ] {
        let q = QualifiedRef::parse(src).unwrap_or_else(|e| panic!("{src:?}: {e}"));
        assert_eq!(q.sheet_name(), Some(sheet), "{src}");
        assert_eq!(q.range(), Range::parse_a1(range).unwrap(), "{src}");
        assert_eq!(q.to_string(), display, "{src}");
        assert_eq!(QualifiedRef::parse(&q.to_string()).unwrap(), q, "{src} round-trip");
    }
}

#[test]
fn dollar_markers_pin_under_autofill_across_sheets() {
    // The sheet qualifier is always pinned; `$` rules apply per corner
    // exactly as on the local sheet (the FR shape here).
    let q = QualifiedRef::parse("'My Sheet'!$A$1:B1").unwrap();
    let filled = q.autofill(0, 3).unwrap();
    assert_eq!(filled.to_string(), "'My Sheet'!$A$1:B4");

    // Fully pinned cross-sheet table (the VLOOKUP idiom) never moves.
    let table = QualifiedRef::parse("Rates!$F$1:$G$3").unwrap();
    assert_eq!(table.autofill(11, 900).unwrap(), table);

    // Relative cross-sheet refs still fall off the grid edge.
    assert!(QualifiedRef::parse("Rates!A1").unwrap().autofill(0, -1).is_none());
}

#[test]
fn malformed_sheet_qualified_forms_error_cleanly() {
    for bad in [
        "!A1",                                   // empty bare name
        "''!A1",                                 // empty quoted name
        "Sheet1!",                               // qualifier without reference
        "Sheet1!!A1",                            // double separator
        "'Open!A1",                              // unterminated quote
        "'My Sheet'A1",                          // missing separator after quote
        "My Sheet!A1",                           // unquoted space
        "Sheet1!A0",                             // invalid row under qualifier
        "Sheet1!A1:B2:C3",                       // malformed range under qualifier
        "Bad[name]!A1",                          // forbidden characters
        "a:b!A1",                                // forbidden `:` in bare name
        "'123456789012345678901234567890xx'!A1", // 32 chars > 31 limit
    ] {
        assert!(QualifiedRef::parse(bad).is_err(), "QualifiedRef::parse({bad:?}) should be Err");
    }
    // SheetRef validation is reachable directly, too.
    assert!(matches!(SheetRef::new("a/b"), Err(GridError::BadSheetName(_))));
}
