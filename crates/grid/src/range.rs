use crate::{Cell, GridError, Offset};
use serde::{Deserialize, Deserializer, Serialize};
use std::fmt;

/// A rectangular region of cells, identified by its top-left (`head`) and
/// bottom-right (`tail`) cells — the paper's "range, akin to a 2D window".
///
/// Invariant: `head.col <= tail.col && head.row <= tail.row`. The
/// constructors normalize their inputs so the invariant always holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct Range {
    head: Cell,
    tail: Cell,
}

impl<'de> Deserialize<'de> for Range {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        // Re-normalize through the constructor so the head ≤ tail invariant
        // survives hand-edited snapshots.
        #[derive(Deserialize)]
        struct Raw {
            head: Cell,
            tail: Cell,
        }
        let raw = Raw::deserialize(deserializer)?;
        Ok(Range::new(raw.head, raw.tail))
    }
}

impl Range {
    /// Creates a range from two corner cells in any order.
    #[inline]
    pub fn new(a: Cell, b: Cell) -> Self {
        Range {
            head: Cell { col: a.col.min(b.col), row: a.row.min(b.row) },
            tail: Cell { col: a.col.max(b.col), row: a.row.max(b.row) },
        }
    }

    /// The single-cell range covering `c`.
    #[inline]
    pub fn cell(c: Cell) -> Self {
        Range { head: c, tail: c }
    }

    /// Convenience constructor from raw 1-based coordinates
    /// `(head_col, head_row, tail_col, tail_row)`.
    #[inline]
    pub fn from_coords(hc: u32, hr: u32, tc: u32, tr: u32) -> Self {
        Range::new(Cell::new(hc, hr), Cell::new(tc, tr))
    }

    /// Top-left cell.
    #[inline]
    pub fn head(&self) -> Cell {
        self.head
    }

    /// Bottom-right cell.
    #[inline]
    pub fn tail(&self) -> Cell {
        self.tail
    }

    /// Number of columns spanned.
    #[inline]
    pub fn width(&self) -> u32 {
        self.tail.col - self.head.col + 1
    }

    /// Number of rows spanned.
    #[inline]
    pub fn height(&self) -> u32 {
        self.tail.row - self.head.row + 1
    }

    /// Number of cells covered.
    #[inline]
    pub fn area(&self) -> u64 {
        u64::from(self.width()) * u64::from(self.height())
    }

    /// `true` iff the range covers exactly one cell.
    #[inline]
    pub fn is_cell(&self) -> bool {
        self.head == self.tail
    }

    /// `true` iff the range is a single column or single row of cells.
    #[inline]
    pub fn is_line(&self) -> bool {
        self.width() == 1 || self.height() == 1
    }

    /// `true` iff `c` lies inside the range.
    #[inline]
    pub fn contains_cell(&self, c: Cell) -> bool {
        self.head.col <= c.col
            && c.col <= self.tail.col
            && self.head.row <= c.row
            && c.row <= self.tail.row
    }

    /// `true` iff `other` lies entirely inside `self`.
    #[inline]
    pub fn contains(&self, other: &Range) -> bool {
        self.contains_cell(other.head) && self.contains_cell(other.tail)
    }

    /// `true` iff the two ranges share at least one cell.
    #[inline]
    pub fn overlaps(&self, other: &Range) -> bool {
        self.head.col <= other.tail.col
            && other.head.col <= self.tail.col
            && self.head.row <= other.tail.row
            && other.head.row <= self.tail.row
    }

    /// The shared region, if any.
    #[inline]
    pub fn intersect(&self, other: &Range) -> Option<Range> {
        if !self.overlaps(other) {
            return None;
        }
        Some(Range {
            head: Cell {
                col: self.head.col.max(other.head.col),
                row: self.head.row.max(other.head.row),
            },
            tail: Cell {
                col: self.tail.col.min(other.tail.col),
                row: self.tail.row.min(other.tail.row),
            },
        })
    }

    /// Minimal bounding range of `self` and `other` — the paper's `⊕`
    /// operator used to merge precedents/dependents into a compressed edge
    /// (e.g. `A1:A3 ⊕ A2:A5 = A1:A5`).
    #[inline]
    pub fn bounding_union(&self, other: &Range) -> Range {
        Range {
            head: Cell {
                col: self.head.col.min(other.head.col),
                row: self.head.row.min(other.head.row),
            },
            tail: Cell {
                col: self.tail.col.max(other.tail.col),
                row: self.tail.row.max(other.tail.row),
            },
        }
    }

    /// Subtracts `other` from `self`, returning the uncovered region as at
    /// most four disjoint rectangles (top and bottom slabs across the full
    /// width, then left and right slabs within the overlapping rows).
    ///
    /// Returns `[self]` when the ranges are disjoint and `[]` when `other`
    /// covers `self`. This is the workhorse behind `removeDep` (clearing a
    /// segment from a compressed edge's dependent) and the visited-set
    /// subtraction in the modified BFS.
    pub fn subtract(&self, other: &Range) -> Vec<Range> {
        let mut out = Vec::with_capacity(4);
        self.subtract_into(other, &mut out);
        out
    }

    /// [`Self::subtract`] appending to a caller-owned buffer instead of
    /// allocating (the modified-BFS hot path calls this per visited
    /// overlap).
    pub fn subtract_into(&self, other: &Range, out: &mut Vec<Range>) {
        let Some(ov) = self.intersect(other) else {
            out.push(*self);
            return;
        };
        // Top slab: rows above the overlap, full width.
        if self.head.row < ov.head.row {
            out.push(Range::from_coords(
                self.head.col,
                self.head.row,
                self.tail.col,
                ov.head.row - 1,
            ));
        }
        // Bottom slab: rows below the overlap, full width.
        if ov.tail.row < self.tail.row {
            out.push(Range::from_coords(
                self.head.col,
                ov.tail.row + 1,
                self.tail.col,
                self.tail.row,
            ));
        }
        // Left slab: columns left of the overlap, within overlap rows.
        if self.head.col < ov.head.col {
            out.push(Range::from_coords(self.head.col, ov.head.row, ov.head.col - 1, ov.tail.row));
        }
        // Right slab: columns right of the overlap, within overlap rows.
        if ov.tail.col < self.tail.col {
            out.push(Range::from_coords(ov.tail.col + 1, ov.head.row, self.tail.col, ov.tail.row));
        }
    }

    /// Subtracts every range in `covers` from `self`, returning the
    /// uncovered remainder as disjoint rectangles.
    pub fn subtract_all<'a, I>(&self, covers: I) -> Vec<Range>
    where
        I: IntoIterator<Item = &'a Range>,
    {
        let mut pieces = Vec::new();
        let mut tmp = Vec::new();
        self.subtract_all_into(covers, &mut pieces, &mut tmp);
        pieces
    }

    /// [`Self::subtract_all`] into caller-owned buffers: `pieces` ends up
    /// holding the remainder, `tmp` is double-buffer scratch. Both are
    /// cleared first; with warmed capacities the refinement allocates
    /// nothing.
    pub fn subtract_all_into<'a, I>(&self, covers: I, pieces: &mut Vec<Range>, tmp: &mut Vec<Range>)
    where
        I: IntoIterator<Item = &'a Range>,
    {
        pieces.clear();
        tmp.clear();
        pieces.push(*self);
        for c in covers {
            if pieces.is_empty() {
                break;
            }
            tmp.clear();
            for p in pieces.iter() {
                p.subtract_into(c, tmp);
            }
            std::mem::swap(pieces, tmp);
        }
    }

    /// Translates the whole range by an offset.
    #[inline]
    pub fn shift(&self, o: Offset) -> Result<Range, GridError> {
        Ok(Range { head: self.head.offset(o)?, tail: self.tail.offset(o)? })
    }

    /// Swaps columns and rows of both corners (row-axis transposition).
    #[inline]
    pub fn transpose(&self) -> Range {
        // head/tail remain head/tail under transposition because min/max per
        // coordinate are preserved by the swap.
        Range { head: self.head.transpose(), tail: self.tail.transpose() }
    }

    /// Iterates over all cells in row-major order.
    ///
    /// Intended for small ranges (tests, cell-level baselines); the area can
    /// be up to `MAX_COL * MAX_ROW`, so callers must bound it themselves.
    pub fn cells(&self) -> impl Iterator<Item = Cell> + '_ {
        let (hc, tc) = (self.head.col, self.tail.col);
        (self.head.row..=self.tail.row)
            .flat_map(move |row| (hc..=tc).map(move |col| Cell { col, row }))
    }

    /// Formats in A1 notation: single cells collapse to `"C5"`, other
    /// ranges print as `"A1:B2"`.
    pub fn to_a1(&self) -> String {
        if self.is_cell() {
            self.head.to_a1()
        } else {
            format!("{}:{}", self.head.to_a1(), self.tail.to_a1())
        }
    }

    /// Parses `"A1"` or `"A1:B2"` (no `$` markers; see [`crate::a1`]).
    pub fn parse_a1(s: &str) -> Result<Self, GridError> {
        match s.split_once(':') {
            None => Ok(Range::cell(Cell::parse_a1(s)?)),
            Some((a, b)) => Ok(Range::new(Cell::parse_a1(a)?, Cell::parse_a1(b)?)),
        }
    }
}

impl From<Cell> for Range {
    fn from(c: Cell) -> Self {
        Range::cell(c)
    }
}

impl fmt::Display for Range {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_a1())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(s: &str) -> Range {
        Range::parse_a1(s).unwrap()
    }

    #[test]
    fn normalizes_corners() {
        let a = Range::new(Cell::new(5, 1), Cell::new(2, 7));
        assert_eq!(a.head(), Cell::new(2, 1));
        assert_eq!(a.tail(), Cell::new(5, 7));
    }

    #[test]
    fn dims() {
        let a = r("B2:D5");
        assert_eq!(a.width(), 3);
        assert_eq!(a.height(), 4);
        assert_eq!(a.area(), 12);
        assert!(!a.is_cell());
        assert!(r("C3").is_cell());
        assert!(r("A1:A9").is_line());
        assert!(r("A1:C1").is_line());
        assert!(!a.is_line());
    }

    #[test]
    fn containment_and_overlap() {
        let a = r("B2:E6");
        assert!(a.contains(&r("C3:D4")));
        assert!(a.contains(&a));
        assert!(!a.contains(&r("A1:C3")));
        assert!(a.overlaps(&r("A1:C3")));
        assert!(!a.overlaps(&r("F1:G9")));
        assert!(a.contains_cell(Cell::new(2, 2)));
        assert!(!a.contains_cell(Cell::new(1, 2)));
    }

    #[test]
    fn intersect_cases() {
        assert_eq!(r("B2:E6").intersect(&r("D4:G9")), Some(r("D4:E6")));
        assert_eq!(r("A1:B2").intersect(&r("C3:D4")), None);
        assert_eq!(r("A1:B2").intersect(&r("A1:B2")), Some(r("A1:B2")));
    }

    #[test]
    fn bounding_union_matches_paper_example() {
        // ⊕ merges A1:A3 and A2:A5 into A1:A5.
        assert_eq!(r("A1:A3").bounding_union(&r("A2:A5")), r("A1:A5"));
        // Non-overlapping ranges still produce the bounding box.
        assert_eq!(r("A1").bounding_union(&r("C3")), r("A1:C3"));
    }

    #[test]
    fn subtract_disjoint_returns_self() {
        assert_eq!(r("A1:B2").subtract(&r("D4:E5")), vec![r("A1:B2")]);
    }

    #[test]
    fn subtract_covering_returns_empty() {
        assert!(r("B2:C3").subtract(&r("A1:D4")).is_empty());
    }

    #[test]
    fn subtract_middle_of_column() {
        // Paper example: removing C2 from C1:C4 leaves C1 and C3:C4.
        let out = r("C1:C4").subtract(&r("C2"));
        assert_eq!(out, vec![r("C1"), r("C3:C4")]);
    }

    #[test]
    fn subtract_center_yields_four_pieces() {
        let out = r("A1:E5").subtract(&r("C3"));
        assert_eq!(out.len(), 4);
        let total: u64 = out.iter().map(Range::area).sum();
        assert_eq!(total, 24);
        // Pieces must be disjoint and avoid C3.
        for (i, a) in out.iter().enumerate() {
            assert!(!a.overlaps(&r("C3")));
            for b in out.iter().skip(i + 1) {
                assert!(!a.overlaps(b));
            }
        }
    }

    #[test]
    fn subtract_all_multiple_covers() {
        let out = r("A1:A10").subtract_all([r("A2:A3"), r("A7")].iter());
        assert_eq!(
            out,
            vec![r("A1"), r("A4:A10")]
                .into_iter()
                .flat_map(|p| p.subtract(&r("A7")))
                .collect::<Vec<_>>()
        );
        let total: u64 = out.iter().map(Range::area).sum();
        assert_eq!(total, 7);
    }

    #[test]
    fn shift_and_transpose() {
        assert_eq!(r("B2:C3").shift(Offset::new(1, 2)).unwrap(), r("C4:D5"));
        assert!(r("A1").shift(Offset::new(-1, 0)).is_err());
        assert_eq!(r("B1:C5").transpose(), Range::from_coords(1, 2, 5, 3));
        assert_eq!(r("B1:C5").transpose().transpose(), r("B1:C5"));
    }

    #[test]
    fn cells_iteration_row_major() {
        let cells: Vec<Cell> = r("B2:C3").cells().collect();
        assert_eq!(cells, vec![Cell::new(2, 2), Cell::new(3, 2), Cell::new(2, 3), Cell::new(3, 3)]);
    }

    #[test]
    fn a1_round_trip() {
        for s in ["A1", "A1:B2", "AB12:XFD99"] {
            assert_eq!(r(s).to_a1(), s);
        }
        // Reversed corners normalize.
        assert_eq!(Range::parse_a1("B2:A1").unwrap().to_a1(), "A1:B2");
    }
}
