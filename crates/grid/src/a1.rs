//! A1-notation parsing and formatting, including `$` absolute markers.
//!
//! The `$` markers matter to TACO beyond mere syntax: autofill treats
//! `$`-prefixed coordinates as *fixed* and the rest as *relative*, which is
//! exactly what generates the four basic patterns (RR/RF/FR/FF). The greedy
//! compressor's final heuristic consults these flags as cues, so the parsed
//! reference types here carry them through.

use crate::{Cell, GridError, Range, MAX_COL, MAX_ROW};
use std::fmt;
use std::hash::{Hash, Hasher};

/// Converts a 1-based column index to letters (`1 → "A"`, `28 → "AB"`).
pub fn col_to_letters(mut col: u32) -> String {
    debug_assert!(col >= 1);
    let mut buf = [0u8; 7];
    let mut i = buf.len();
    while col > 0 {
        let rem = (col - 1) % 26;
        i -= 1;
        buf[i] = b'A' + rem as u8;
        col = (col - 1) / 26;
    }
    String::from_utf8_lossy(&buf[i..]).into_owned()
}

/// Converts column letters to the 1-based index (`"A" → 1`, `"AB" → 28`).
pub fn letters_to_col(s: &str) -> Result<u32, GridError> {
    if s.is_empty() || s.len() > 7 {
        return Err(GridError::BadA1(s.to_string()));
    }
    let mut col: u64 = 0;
    for b in s.bytes() {
        let v = match b {
            b'A'..=b'Z' => u64::from(b - b'A') + 1,
            b'a'..=b'z' => u64::from(b - b'a') + 1,
            _ => return Err(GridError::BadA1(s.to_string())),
        };
        col = col * 26 + v;
        if col > u64::from(MAX_COL) {
            return Err(GridError::BadA1(s.to_string()));
        }
    }
    Ok(col as u32)
}

/// A parsed single-cell reference with absolute/relative flags per
/// coordinate, e.g. `$B$1` (both fixed) or `B4` (both relative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellRef {
    /// The referenced cell position.
    pub cell: Cell,
    /// `true` iff the column was `$`-prefixed (fixed under autofill).
    pub col_abs: bool,
    /// `true` iff the row was `$`-prefixed (fixed under autofill).
    pub row_abs: bool,
}

impl CellRef {
    /// A fully relative reference to `cell`.
    pub fn relative(cell: Cell) -> Self {
        CellRef { cell, col_abs: false, row_abs: false }
    }

    /// A fully absolute (`$C$R`) reference to `cell`.
    pub fn absolute(cell: Cell) -> Self {
        CellRef { cell, col_abs: true, row_abs: true }
    }

    /// `true` iff both coordinates are `$`-fixed.
    pub fn is_fixed(&self) -> bool {
        self.col_abs && self.row_abs
    }

    /// `true` iff neither coordinate is `$`-fixed.
    pub fn is_relative(&self) -> bool {
        !self.col_abs && !self.row_abs
    }

    /// Parses `[$]LETTERS[$]DIGITS`.
    pub fn parse(s: &str) -> Result<Self, GridError> {
        let bytes = s.as_bytes();
        let mut i = 0;
        let col_abs = bytes.first() == Some(&b'$');
        if col_abs {
            i += 1;
        }
        let col_start = i;
        while i < bytes.len() && bytes[i].is_ascii_alphabetic() {
            i += 1;
        }
        if i == col_start {
            return Err(GridError::BadA1(s.to_string()));
        }
        let col = letters_to_col(&s[col_start..i])?;
        let row_abs = bytes.get(i) == Some(&b'$');
        if row_abs {
            i += 1;
        }
        let row_str = &s[i..];
        if row_str.is_empty() || !row_str.bytes().all(|b| b.is_ascii_digit()) {
            return Err(GridError::BadA1(s.to_string()));
        }
        let row: u64 = row_str.parse().map_err(|_| GridError::BadA1(s.to_string()))?;
        if row == 0 || row > u64::from(MAX_ROW) {
            return Err(GridError::BadA1(s.to_string()));
        }
        Ok(CellRef { cell: Cell::new(col, row as u32), col_abs, row_abs })
    }

    /// Applies an autofill translation: relative coordinates shift by the
    /// delta, `$`-fixed coordinates stay put. Returns `None` if a relative
    /// coordinate would leave the grid.
    pub fn autofill(&self, dc: i64, dr: i64) -> Option<CellRef> {
        let col =
            if self.col_abs { i64::from(self.cell.col) } else { i64::from(self.cell.col) + dc };
        let row =
            if self.row_abs { i64::from(self.cell.row) } else { i64::from(self.cell.row) + dr };
        let cell = Cell::try_new(col, row).ok()?;
        Some(CellRef { cell, col_abs: self.col_abs, row_abs: self.row_abs })
    }
}

impl fmt::Display for CellRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}{}",
            if self.col_abs { "$" } else { "" },
            col_to_letters(self.cell.col),
            if self.row_abs { "$" } else { "" },
            self.cell.row
        )
    }
}

/// A parsed reference to either a single cell or a rectangular range, with
/// per-corner `$` flags (`SUM($B$1:B4)` has a fixed head and relative tail).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RangeRef {
    /// Head-corner reference (top-left after normalization).
    pub head: CellRef,
    /// Tail-corner reference (bottom-right after normalization).
    pub tail: CellRef,
}

impl RangeRef {
    /// A reference to a single cell (head == tail, shared flags).
    pub fn single(r: CellRef) -> Self {
        RangeRef { head: r, tail: r }
    }

    /// Builds from two corner refs, normalizing so head is top-left. The
    /// `$` flags travel with the coordinate they annotate.
    pub fn from_corners(a: CellRef, b: CellRef) -> Self {
        // Normalize per coordinate: flags follow the coordinate chosen.
        let (head_col, head_col_abs, tail_col, tail_col_abs) = if a.cell.col <= b.cell.col {
            (a.cell.col, a.col_abs, b.cell.col, b.col_abs)
        } else {
            (b.cell.col, b.col_abs, a.cell.col, a.col_abs)
        };
        let (head_row, head_row_abs, tail_row, tail_row_abs) = if a.cell.row <= b.cell.row {
            (a.cell.row, a.row_abs, b.cell.row, b.row_abs)
        } else {
            (b.cell.row, b.row_abs, a.cell.row, a.row_abs)
        };
        RangeRef {
            head: CellRef {
                cell: Cell::new(head_col, head_row),
                col_abs: head_col_abs,
                row_abs: head_row_abs,
            },
            tail: CellRef {
                cell: Cell::new(tail_col, tail_row),
                col_abs: tail_col_abs,
                row_abs: tail_row_abs,
            },
        }
    }

    /// Parses `"B4"`, `"$B$1:B4"`, etc.
    pub fn parse(s: &str) -> Result<Self, GridError> {
        match s.split_once(':') {
            None => Ok(RangeRef::single(CellRef::parse(s)?)),
            Some((a, b)) => Ok(RangeRef::from_corners(CellRef::parse(a)?, CellRef::parse(b)?)),
        }
    }

    /// The plain geometric range (flags dropped).
    pub fn range(&self) -> Range {
        Range::new(self.head.cell, self.tail.cell)
    }

    /// `true` iff the reference is a single cell.
    pub fn is_cell(&self) -> bool {
        self.head.cell == self.tail.cell
    }

    /// Applies an autofill translation to both corners (see
    /// [`CellRef::autofill`]).
    pub fn autofill(&self, dc: i64, dr: i64) -> Option<RangeRef> {
        Some(RangeRef { head: self.head.autofill(dc, dr)?, tail: self.tail.autofill(dc, dr)? })
    }

    /// The same reference resized to `width × height`, anchored at its
    /// *normalized* top-left corner and clamped to the grid — Excel's
    /// implicit shaping of `SUMIF`'s sum range to the criteria range's
    /// dimensions. (Autofill can leave the stored corners de-normalized,
    /// e.g. `B5:B$2`; evaluation anchors at the geometric head, so the
    /// read set must too.)
    pub fn resized(&self, width: u32, height: u32) -> RangeRef {
        let head = self.range().head();
        let tail = Cell::new(
            (head.col + width.max(1) - 1).min(MAX_COL),
            (head.row + height.max(1) - 1).min(MAX_ROW),
        );
        RangeRef {
            head: CellRef { cell: head, ..self.head },
            tail: CellRef { cell: tail, ..self.tail },
        }
    }
}

impl fmt::Display for RangeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_cell() && self.head == self.tail {
            write!(f, "{}", self.head)
        } else {
            write!(f, "{}:{}", self.head, self.tail)
        }
    }
}

/// Maximum sheet-name length (the xlsx limit).
pub const MAX_SHEET_NAME: usize = 31;

/// A validated worksheet name, as written before the `!` in a qualified
/// reference (`Sheet2!A1`, `'My Sheet'!A1:B3`).
///
/// Sheet names compare and hash **case-insensitively** (ASCII), matching
/// spreadsheet semantics, while the original spelling is preserved for
/// display. Display re-quotes the name when the bare form would not lex as
/// a plain identifier, escaping embedded apostrophes as `''`.
#[derive(Debug, Clone)]
pub struct SheetRef {
    name: String,
}

impl SheetRef {
    /// Validates and wraps a sheet name (the *unquoted* text: pass
    /// `My Sheet`, not `'My Sheet'`).
    pub fn new(name: impl Into<String>) -> Result<Self, GridError> {
        let name = name.into();
        let ok = !name.is_empty()
            && name.chars().count() <= MAX_SHEET_NAME
            && !name.starts_with('\'')
            && !name.ends_with('\'')
            && !name.contains(['[', ']', ':', '\\', '/', '?', '*']);
        if ok {
            Ok(SheetRef { name })
        } else {
            Err(GridError::BadSheetName(name))
        }
    }

    /// The name as the user wrote it (no quotes).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `true` iff this sheet has the given name (ASCII case-insensitive).
    pub fn matches(&self, other: &str) -> bool {
        self.name.eq_ignore_ascii_case(other)
    }

    /// Canonical lookup key: the name lower-cased.
    pub fn key(&self) -> String {
        self.name.to_ascii_lowercase()
    }

    /// `true` iff the name must be written in single quotes (`'My
    /// Sheet'!A1`): anything that would not lex as a bare identifier.
    pub fn needs_quoting(&self) -> bool {
        !SheetRef::bare_ok(&self.name)
    }

    /// `true` iff the bare (unquoted) form would lex as an identifier; when
    /// false, Display wraps the name in single quotes.
    fn bare_ok(name: &str) -> bool {
        let mut chars = name.chars();
        let head_ok = chars.next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
        head_ok && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
    }
}

impl PartialEq for SheetRef {
    fn eq(&self, other: &Self) -> bool {
        self.name.eq_ignore_ascii_case(&other.name)
    }
}

impl Eq for SheetRef {}

impl Hash for SheetRef {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for b in self.name.bytes() {
            state.write_u8(b.to_ascii_lowercase());
        }
    }
}

impl fmt::Display for SheetRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if SheetRef::bare_ok(&self.name) {
            f.write_str(&self.name)
        } else {
            write!(f, "'{}'", self.name.replace('\'', "''"))
        }
    }
}

/// A possibly sheet-qualified range reference: the unit a parsed formula
/// stores per reference and the unit the workbook's inter-sheet edge table
/// routes. `sheet == None` means "the formula's own sheet".
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QualifiedRef {
    /// The qualifying sheet, if any (`Sheet2!…`).
    pub sheet: Option<SheetRef>,
    /// The geometric reference with its `$` flags.
    pub rref: RangeRef,
}

impl QualifiedRef {
    /// An unqualified (same-sheet) reference.
    pub fn local(rref: RangeRef) -> Self {
        QualifiedRef { sheet: None, rref }
    }

    /// A reference into `sheet`.
    pub fn on_sheet(sheet: SheetRef, rref: RangeRef) -> Self {
        QualifiedRef { sheet: Some(sheet), rref }
    }

    /// `true` iff the reference has no sheet qualifier.
    pub fn is_local(&self) -> bool {
        self.sheet.is_none()
    }

    /// The qualifying sheet name, if any.
    pub fn sheet_name(&self) -> Option<&str> {
        self.sheet.as_ref().map(SheetRef::name)
    }

    /// The plain geometric range (sheet and flags dropped).
    pub fn range(&self) -> Range {
        self.rref.range()
    }

    /// Parses `"A1"`, `"Sheet2!A1:B3"`, `"'My Sheet'!$A$1"`, ….
    pub fn parse(s: &str) -> Result<Self, GridError> {
        if let Some(rest) = s.strip_prefix('\'') {
            // Quoted sheet name: scan for the closing quote, un-escaping ''.
            let mut name = String::new();
            let mut chars = rest.char_indices().peekable();
            while let Some((i, ch)) = chars.next() {
                if ch != '\'' {
                    name.push(ch);
                    continue;
                }
                if chars.peek().map(|&(_, c)| c) == Some('\'') {
                    name.push('\'');
                    chars.next();
                    continue;
                }
                // Closing quote: the rest must be `!ref`.
                let tail = &rest[i + 1..];
                let Some(rref) = tail.strip_prefix('!') else {
                    return Err(GridError::BadA1(s.to_string()));
                };
                return Ok(QualifiedRef::on_sheet(SheetRef::new(name)?, RangeRef::parse(rref)?));
            }
            Err(GridError::BadA1(s.to_string()))
        } else {
            match s.split_once('!') {
                None => Ok(QualifiedRef::local(RangeRef::parse(s)?)),
                Some((sheet, rref)) => {
                    let sheet = SheetRef::new(sheet)?;
                    // Unquoted form must be a bare identifier (`My
                    // Sheet!A1` is malformed; write `'My Sheet'!A1`).
                    if sheet.needs_quoting() {
                        return Err(GridError::BadA1(s.to_string()));
                    }
                    Ok(QualifiedRef::on_sheet(sheet, RangeRef::parse(rref)?))
                }
            }
        }
    }

    /// Applies an autofill translation: the sheet qualifier is always fixed
    /// (dragging a fill handle never changes which sheet is referenced);
    /// the range shifts per its `$` flags.
    pub fn autofill(&self, dc: i64, dr: i64) -> Option<QualifiedRef> {
        Some(QualifiedRef { sheet: self.sheet.clone(), rref: self.rref.autofill(dc, dr)? })
    }

    /// Rewrites the geometric part, keeping the qualifier.
    pub fn with_rref(&self, rref: RangeRef) -> QualifiedRef {
        QualifiedRef { sheet: self.sheet.clone(), rref }
    }

    /// The same reference resized to `width × height` (see
    /// [`RangeRef::resized`]), keeping the qualifier.
    pub fn resized(&self, width: u32, height: u32) -> QualifiedRef {
        self.with_rref(self.rref.resized(width, height))
    }
}

impl From<RangeRef> for QualifiedRef {
    fn from(rref: RangeRef) -> Self {
        QualifiedRef::local(rref)
    }
}

impl fmt::Display for QualifiedRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.sheet {
            Some(s) => write!(f, "{s}!{}", self.rref),
            None => write!(f, "{}", self.rref),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_letters_round_trip() {
        for (n, s) in [
            (1, "A"),
            (26, "Z"),
            (27, "AA"),
            (28, "AB"),
            (52, "AZ"),
            (53, "BA"),
            (702, "ZZ"),
            (703, "AAA"),
            (16384, "XFD"),
        ] {
            assert_eq!(col_to_letters(n), s);
            assert_eq!(letters_to_col(s).unwrap(), n);
            assert_eq!(letters_to_col(&s.to_lowercase()).unwrap(), n);
        }
        assert!(letters_to_col("").is_err());
        assert!(letters_to_col("XFE").is_err()); // beyond MAX_COL
        assert!(letters_to_col("A1").is_err());
    }

    #[test]
    fn cell_ref_parse_flags() {
        let r = CellRef::parse("$B$1").unwrap();
        assert!(r.is_fixed());
        assert_eq!(r.cell, Cell::new(2, 1));

        let r = CellRef::parse("B4").unwrap();
        assert!(r.is_relative());

        let r = CellRef::parse("$B4").unwrap();
        assert!(r.col_abs && !r.row_abs);

        let r = CellRef::parse("B$4").unwrap();
        assert!(!r.col_abs && r.row_abs);

        for bad in ["", "B", "4", "$", "B$", "$B$", "B0", "1B", "B-1", "B 4"] {
            assert!(CellRef::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn cell_ref_display_round_trip() {
        for s in ["A1", "$A1", "A$1", "$A$1", "XFD1048576"] {
            assert_eq!(CellRef::parse(s).unwrap().to_string(), s);
        }
    }

    #[test]
    fn autofill_respects_dollar() {
        // $B$1 never moves; B4 moves with the fill delta.
        let fixed = CellRef::parse("$B$1").unwrap();
        assert_eq!(fixed.autofill(3, 7).unwrap(), fixed);

        let rel = CellRef::parse("B4").unwrap();
        assert_eq!(rel.autofill(1, 2).unwrap(), CellRef::parse("C6").unwrap());

        let mixed = CellRef::parse("$B4").unwrap();
        assert_eq!(mixed.autofill(1, 2).unwrap(), CellRef::parse("$B6").unwrap());

        // Falling off the grid fails.
        assert!(CellRef::parse("A1").unwrap().autofill(-1, 0).is_none());
    }

    #[test]
    fn range_ref_parse_and_range() {
        let r = RangeRef::parse("$B$1:B4").unwrap();
        assert!(r.head.is_fixed());
        assert!(r.tail.is_relative());
        assert_eq!(r.range(), Range::from_coords(2, 1, 2, 4));
        assert_eq!(r.to_string(), "$B$1:B4");
    }

    #[test]
    fn range_ref_normalizes_with_flags() {
        // Corners given bottom-right first; flags must follow coordinates.
        let r = RangeRef::parse("B$4:$A1").unwrap();
        assert_eq!(r.range(), Range::from_coords(1, 1, 2, 4));
        assert!(r.head.col_abs); // the $A column flag
        assert!(!r.head.row_abs);
        assert!(!r.tail.col_abs);
        assert!(r.tail.row_abs); // the $4 row flag
    }

    #[test]
    fn range_ref_autofill_generates_rr_pattern() {
        // SUM(A1:B3) autofilled down yields A2:B4, A3:B5, ... (Fig. 4a).
        let src = RangeRef::parse("A1:B3").unwrap();
        let filled = src.autofill(0, 1).unwrap();
        assert_eq!(filled.range(), Range::from_coords(1, 2, 2, 4));
    }

    #[test]
    fn sheet_ref_validation_and_case() {
        let s = SheetRef::new("Sheet1").unwrap();
        assert!(s.matches("sheet1"));
        assert!(s.matches("SHEET1"));
        assert_eq!(s.key(), "sheet1");
        assert_eq!(s, SheetRef::new("sHeEt1").unwrap());

        for bad in ["", "a:b", "a/b", "a\\b", "a?b", "a*b", "a[b", "a]b", "'lead", "trail'"] {
            assert!(SheetRef::new(bad).is_err(), "{bad:?} should fail");
        }
        assert!(SheetRef::new("x".repeat(31)).is_ok());
        assert!(SheetRef::new("x".repeat(32)).is_err());
        // An *embedded* apostrophe is legal (escaped as '' when quoted).
        assert_eq!(SheetRef::new("it's").unwrap().to_string(), "'it''s'");
    }

    #[test]
    fn sheet_ref_display_quotes_when_needed() {
        assert_eq!(SheetRef::new("Sheet1").unwrap().to_string(), "Sheet1");
        assert_eq!(SheetRef::new("_tmp2").unwrap().to_string(), "_tmp2");
        assert_eq!(SheetRef::new("My Sheet").unwrap().to_string(), "'My Sheet'");
        assert_eq!(SheetRef::new("2024").unwrap().to_string(), "'2024'");
        assert_eq!(SheetRef::new("a-b").unwrap().to_string(), "'a-b'");
    }

    #[test]
    fn qualified_ref_parse_and_display() {
        let q = QualifiedRef::parse("A1:B2").unwrap();
        assert!(q.is_local());
        assert_eq!(q.to_string(), "A1:B2");

        let q = QualifiedRef::parse("Sheet2!$A$1:B2").unwrap();
        assert_eq!(q.sheet_name(), Some("Sheet2"));
        assert_eq!(q.range(), Range::from_coords(1, 1, 2, 2));
        assert_eq!(q.to_string(), "Sheet2!$A$1:B2");

        let q = QualifiedRef::parse("'My Sheet'!C3").unwrap();
        assert_eq!(q.sheet_name(), Some("My Sheet"));
        assert_eq!(q.to_string(), "'My Sheet'!C3");

        let q = QualifiedRef::parse("'it''s'!A1").unwrap();
        assert_eq!(q.sheet_name(), Some("it's"));
        assert_eq!(QualifiedRef::parse(&q.to_string()).unwrap(), q);
    }

    #[test]
    fn qualified_ref_malformed_forms_err() {
        for bad in [
            "!A1",
            "Sheet1!",
            "Sheet1!!A1",
            "'Open!A1",
            "''!A1",
            "'My Sheet'A1",
            "'My Sheet'!",
            "Sheet1!A0",
        ] {
            assert!(QualifiedRef::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn qualified_ref_autofill_pins_sheet() {
        let q = QualifiedRef::parse("'My Sheet'!$A$1:B2").unwrap();
        let f = q.autofill(1, 3).unwrap();
        assert_eq!(f.sheet_name(), Some("My Sheet"));
        assert_eq!(f.to_string(), "'My Sheet'!$A$1:C5");
        // Falling off the grid still fails.
        assert!(QualifiedRef::parse("S!A1").unwrap().autofill(0, -1).is_none());
    }
}
