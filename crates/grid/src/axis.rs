use crate::{Cell, Offset, Range};
use serde::{Deserialize, Serialize};

/// The axis along which a run of formula cells is compressed.
///
/// The paper defines the basic patterns for "adjacent cells in a column"
/// and notes the row-wise case "can be derived symmetrically". We exploit
/// that symmetry: all pattern math is written for [`Axis::Col`], and
/// [`Axis::Row`] transposes ranges/offsets on the way in and out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Axis {
    /// Column-wise compression: the dependent cells form a vertical run
    /// (one column, consecutive rows).
    Col,
    /// Row-wise compression: the dependent cells form a horizontal run.
    Row,
}

impl Axis {
    /// Maps a range into canonical (column-axis) coordinates.
    #[inline]
    pub fn canon(self, r: Range) -> Range {
        match self {
            Axis::Col => r,
            Axis::Row => r.transpose(),
        }
    }

    /// Maps a range back from canonical coordinates.
    ///
    /// Transposition is an involution, so this is the same operation as
    /// [`Axis::canon`]; the distinct name documents direction at call sites.
    #[inline]
    pub fn uncanon(self, r: Range) -> Range {
        self.canon(r)
    }

    /// Maps a cell into canonical coordinates.
    #[inline]
    pub fn canon_cell(self, c: Cell) -> Cell {
        match self {
            Axis::Col => c,
            Axis::Row => c.transpose(),
        }
    }

    /// Maps an offset into canonical coordinates.
    #[inline]
    pub fn canon_offset(self, o: Offset) -> Offset {
        match self {
            Axis::Col => o,
            Axis::Row => o.transpose(),
        }
    }

    /// The perpendicular axis.
    #[inline]
    pub fn other(self) -> Axis {
        match self {
            Axis::Col => Axis::Row,
            Axis::Row => Axis::Col,
        }
    }

    /// Whether two cells are adjacent along this axis (same perpendicular
    /// coordinate, axis coordinates differing by one). Column-axis adjacency
    /// means vertically adjacent cells in one column.
    #[inline]
    pub fn adjacent(self, a: Cell, b: Cell) -> bool {
        let (a, b) = (self.canon_cell(a), self.canon_cell(b));
        a.col == b.col && a.row.abs_diff(b.row) == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canon_round_trips() {
        let r = Range::from_coords(2, 1, 3, 5);
        for axis in [Axis::Col, Axis::Row] {
            assert_eq!(axis.uncanon(axis.canon(r)), r);
        }
        assert_eq!(Axis::Row.canon(r), Range::from_coords(1, 2, 5, 3));
    }

    #[test]
    fn adjacency() {
        let a = Cell::new(3, 4);
        assert!(Axis::Col.adjacent(a, Cell::new(3, 5)));
        assert!(Axis::Col.adjacent(a, Cell::new(3, 3)));
        assert!(!Axis::Col.adjacent(a, Cell::new(4, 4)));
        assert!(!Axis::Col.adjacent(a, Cell::new(3, 6)));
        assert!(Axis::Row.adjacent(a, Cell::new(4, 4)));
        assert!(!Axis::Row.adjacent(a, Cell::new(3, 5)));
        assert!(!Axis::Col.adjacent(a, a));
    }

    #[test]
    fn other_flips() {
        assert_eq!(Axis::Col.other(), Axis::Row);
        assert_eq!(Axis::Row.other(), Axis::Col);
    }
}
