//! Spreadsheet geometry substrate for the TACO reproduction.
//!
//! This crate owns the coordinate system everything else builds on:
//!
//! - [`Cell`] — a single cell position (1-based column and row),
//! - [`Offset`] — a relative position between two cells (the paper's
//!   `(p, q)` pairs used by the RR/RF/FR pattern metadata),
//! - [`Range`] — a rectangular region identified by its head (top-left) and
//!   tail (bottom-right) cells,
//! - [`Axis`] — the compression axis (column-wise or row-wise) together with
//!   the transposition helpers that let pattern math be written once for the
//!   column case and reused for the row case,
//! - A1 notation parsing/formatting including `$` absolute markers
//!   ([`a1::CellRef`], [`a1::RangeRef`]).
//!
//! The rectangle algebra here (`bounding_union` = the paper's `⊕`,
//! `intersect`, `subtract`) is exactly what the compressed-edge
//! representation and the modified BFS in `taco-core` rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod a1;
mod axis;
mod cell;
mod error;
mod offset;
mod range;
mod structural;

pub use axis::Axis;
pub use cell::Cell;
pub use error::GridError;
pub use offset::Offset;
pub use range::Range;

/// Maximum 1-based column index supported (xlsx limit: `XFD` = 16_384).
pub const MAX_COL: u32 = 16_384;
/// Maximum 1-based row index supported (xlsx limit: 1_048_576).
pub const MAX_ROW: u32 = 1_048_576;
