use crate::{GridError, Offset, MAX_COL, MAX_ROW};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single cell position.
///
/// Both coordinates are 1-based, matching the paper's `(i, j)` convention
/// where `i` is the column index and `j` the row index. `A1` is
/// `Cell { col: 1, row: 1 }`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Cell {
    /// 1-based column index (`A` = 1).
    pub col: u32,
    /// 1-based row index.
    pub row: u32,
}

impl Cell {
    /// Creates a cell, panicking if either coordinate is zero.
    ///
    /// Use [`Cell::try_new`] for fallible construction from untrusted input.
    #[inline]
    pub fn new(col: u32, row: u32) -> Self {
        assert!(col >= 1 && row >= 1, "cell coordinates are 1-based");
        Cell { col, row }
    }

    /// Fallible constructor that also enforces the grid limits.
    pub fn try_new(col: i64, row: i64) -> Result<Self, GridError> {
        if col < 1 || row < 1 || col > i64::from(MAX_COL) || row > i64::from(MAX_ROW) {
            return Err(GridError::OutOfBounds { col, row });
        }
        Ok(Cell { col: col as u32, row: row as u32 })
    }

    /// The relative position of `self` with respect to `other`, i.e. the
    /// offset `o` such that `other + o == self`.
    ///
    /// This is the paper's `u − v` used by `rel(e)`: e.g. for the edge
    /// `A5:B7 → C5`, `hRel = A5 − C5 = (−2, 0)`.
    #[inline]
    pub fn offset_from(self, other: Cell) -> Offset {
        Offset {
            dc: i64::from(self.col) - i64::from(other.col),
            dr: i64::from(self.row) - i64::from(other.row),
        }
    }

    /// Translates the cell by an offset, failing if it leaves the grid.
    #[inline]
    pub fn offset(self, o: Offset) -> Result<Cell, GridError> {
        Cell::try_new(i64::from(self.col) + o.dc, i64::from(self.row) + o.dr)
    }

    /// Translates the cell by an offset without bounds checking against the
    /// grid maxima (still requires the result to be ≥ (1,1)).
    ///
    /// `find_dep`-style back-calculations may transiently step outside the
    /// dependent range before intersecting; they must never step below 1.
    #[inline]
    pub fn offset_saturating(self, o: Offset) -> Cell {
        let col = (i64::from(self.col) + o.dc).clamp(1, i64::from(u32::MAX));
        let row = (i64::from(self.row) + o.dr).clamp(1, i64::from(u32::MAX));
        Cell { col: col as u32, row: row as u32 }
    }

    /// Swaps the column and row coordinates.
    ///
    /// Pattern algorithms are written for column-axis compression; the
    /// row-axis case transposes its inputs, runs the same math, and
    /// transposes back (the paper's "derived symmetrically").
    #[inline]
    pub fn transpose(self) -> Cell {
        Cell { col: self.row, row: self.col }
    }

    /// Formats the cell in A1 notation (e.g. `"C5"`).
    pub fn to_a1(self) -> String {
        format!("{}{}", crate::a1::col_to_letters(self.col), self.row)
    }

    /// Parses plain A1 notation (no `$` markers; see [`crate::a1`] for
    /// references with absolute markers).
    pub fn parse_a1(s: &str) -> Result<Self, GridError> {
        let r = crate::a1::CellRef::parse(s)?;
        if r.col_abs || r.row_abs {
            return Err(GridError::BadA1(s.to_string()));
        }
        Ok(r.cell)
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_a1())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offset_round_trip() {
        let a = Cell::new(3, 5);
        let b = Cell::new(1, 9);
        let o = a.offset_from(b);
        assert_eq!(o, Offset { dc: 2, dr: -4 });
        assert_eq!(b.offset(o).unwrap(), a);
    }

    #[test]
    fn rel_example_from_paper() {
        // e' = A5:B7 → C5: hRel = A5 − C5 = (−2, 0), tRel = B7 − C5 = (−1, 2).
        let c5 = Cell::new(3, 5);
        let a5 = Cell::new(1, 5);
        let b7 = Cell::new(2, 7);
        assert_eq!(a5.offset_from(c5), Offset { dc: -2, dr: 0 });
        assert_eq!(b7.offset_from(c5), Offset { dc: -1, dr: 2 });
    }

    #[test]
    fn try_new_bounds() {
        assert!(Cell::try_new(0, 1).is_err());
        assert!(Cell::try_new(1, 0).is_err());
        assert!(Cell::try_new(-3, 10).is_err());
        assert!(Cell::try_new(i64::from(MAX_COL) + 1, 1).is_err());
        assert!(Cell::try_new(1, i64::from(MAX_ROW) + 1).is_err());
        assert_eq!(Cell::try_new(1, 1).unwrap(), Cell::new(1, 1));
    }

    #[test]
    fn offset_out_of_grid_is_error() {
        let a1 = Cell::new(1, 1);
        assert!(a1.offset(Offset { dc: -1, dr: 0 }).is_err());
        assert!(a1.offset(Offset { dc: 0, dr: -1 }).is_err());
    }

    #[test]
    fn saturating_offset_clamps_at_one() {
        let a1 = Cell::new(1, 1);
        assert_eq!(a1.offset_saturating(Offset { dc: -5, dr: -5 }), Cell::new(1, 1));
    }

    #[test]
    fn transpose_is_involution() {
        let c = Cell::new(7, 2);
        assert_eq!(c.transpose().transpose(), c);
        assert_eq!(c.transpose(), Cell::new(2, 7));
    }

    #[test]
    fn display_and_parse() {
        let c = Cell::new(28, 12);
        assert_eq!(c.to_a1(), "AB12");
        assert_eq!(Cell::parse_a1("AB12").unwrap(), c);
        assert!(Cell::parse_a1("$AB12").is_err());
    }

    #[test]
    fn ordering_is_row_major_by_col_then_row() {
        // Ord derives in field order (col, row): fine for BTreeMap keys; just
        // pin the behaviour so accidental field reorders get caught.
        assert!(Cell::new(1, 9) < Cell::new(2, 1));
        assert!(Cell::new(2, 1) < Cell::new(2, 2));
    }
}
