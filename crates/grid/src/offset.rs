use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Neg, Sub};

/// A relative position between two cells: the paper's `(p, q)` pair where
/// `p` is the column distance and `q` the row distance.
///
/// Given cells `u` and `v`, `u` is relative to `v` by `(p, q)` iff
/// `v.col = u.col + p` and `v.row = u.row + q` — equivalently
/// `u.offset_from(v) == Offset { dc: -p, dr: -q }`. We store the signed
/// deltas directly (`dc`, `dr`), which is the form `rel(e)` computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Offset {
    /// Signed column delta.
    pub dc: i64,
    /// Signed row delta.
    pub dr: i64,
}

impl Offset {
    /// The zero offset.
    pub const ZERO: Offset = Offset { dc: 0, dr: 0 };

    /// Creates an offset from column/row deltas.
    #[inline]
    pub fn new(dc: i64, dr: i64) -> Self {
        Offset { dc, dr }
    }

    /// Swaps the column and row deltas (row-axis transposition).
    #[inline]
    pub fn transpose(self) -> Offset {
        Offset { dc: self.dr, dr: self.dc }
    }
}

impl Add for Offset {
    type Output = Offset;
    #[inline]
    fn add(self, rhs: Offset) -> Offset {
        Offset { dc: self.dc + rhs.dc, dr: self.dr + rhs.dr }
    }
}

impl Sub for Offset {
    type Output = Offset;
    #[inline]
    fn sub(self, rhs: Offset) -> Offset {
        Offset { dc: self.dc - rhs.dc, dr: self.dr - rhs.dr }
    }
}

impl Neg for Offset {
    type Output = Offset;
    #[inline]
    fn neg(self) -> Offset {
        Offset { dc: -self.dc, dr: -self.dr }
    }
}

impl fmt::Display for Offset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.dc, self.dr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Offset::new(2, -3);
        let b = Offset::new(-1, 5);
        assert_eq!(a + b, Offset::new(1, 2));
        assert_eq!(a - b, Offset::new(3, -8));
        assert_eq!(-a, Offset::new(-2, 3));
        assert_eq!(a + Offset::ZERO, a);
    }

    #[test]
    fn transpose_is_involution() {
        let a = Offset::new(4, -7);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose(), Offset::new(-7, 4));
    }

    #[test]
    fn display() {
        assert_eq!(Offset::new(-2, 0).to_string(), "(-2, 0)");
    }
}
