//! Structural-edit geometry: how cells and ranges move when rows or
//! columns are inserted or deleted (Excel semantics).
//!
//! Inserting `n` rows *before* row `at` shifts everything at `at` and
//! below down by `n`; a range whose interior spans the insertion point
//! stretches. Deleting the band `[at, at + n)` drops cells inside it,
//! shifts everything below up, and shrinks ranges that overlap the band —
//! a range entirely inside the band disappears (the `#REF!` case).
//!
//! Column operations are the row operations transposed.

use crate::{Cell, Range, MAX_COL, MAX_ROW};

impl Cell {
    /// Position after inserting `n` rows before row `at`; `None` if the
    /// cell is pushed off the bottom of the grid.
    pub fn insert_rows(self, at: u32, n: u32) -> Option<Cell> {
        if self.row < at {
            Some(self)
        } else {
            let row = u64::from(self.row) + u64::from(n);
            (row <= u64::from(MAX_ROW)).then(|| Cell::new(self.col, row as u32))
        }
    }

    /// Position after deleting the rows `[at, at + n)`; `None` if the cell
    /// itself is deleted.
    pub fn delete_rows(self, at: u32, n: u32) -> Option<Cell> {
        if self.row < at {
            Some(self)
        } else if self.row < at.saturating_add(n) {
            None
        } else {
            Some(Cell::new(self.col, self.row - n))
        }
    }

    /// Position after inserting `n` columns before column `at`.
    pub fn insert_cols(self, at: u32, n: u32) -> Option<Cell> {
        if self.col < at {
            Some(self)
        } else {
            let col = u64::from(self.col) + u64::from(n);
            (col <= u64::from(MAX_COL)).then(|| Cell::new(col as u32, self.row))
        }
    }

    /// Position after deleting the columns `[at, at + n)`.
    pub fn delete_cols(self, at: u32, n: u32) -> Option<Cell> {
        if self.col < at {
            Some(self)
        } else if self.col < at.saturating_add(n) {
            None
        } else {
            Some(Cell::new(self.col - n, self.row))
        }
    }
}

impl Range {
    /// The range after inserting `n` rows before row `at`: shifts if
    /// entirely at/below `at`, stretches if `at` falls strictly inside,
    /// and is unchanged if entirely above. `None` if the whole range is
    /// pushed off the grid.
    pub fn insert_rows(&self, at: u32, n: u32) -> Option<Range> {
        let head = self.head();
        let tail = self.tail();
        if tail.row < at {
            return Some(*self);
        }
        let new_tail_row = (u64::from(tail.row) + u64::from(n)).min(u64::from(MAX_ROW)) as u32;
        let new_head_row = if head.row < at {
            head.row // stretched range keeps its top
        } else {
            let r = u64::from(head.row) + u64::from(n);
            if r > u64::from(MAX_ROW) {
                return None;
            }
            r as u32
        };
        Some(Range::from_coords(head.col, new_head_row, tail.col, new_tail_row))
    }

    /// The range after deleting the rows `[at, at + n)`: `None` if it lay
    /// entirely inside the band (its referents are gone — `#REF!`).
    pub fn delete_rows(&self, at: u32, n: u32) -> Option<Range> {
        let band_end = at.saturating_add(n); // first surviving row below
        let head = self.head();
        let tail = self.tail();
        if tail.row < at {
            return Some(*self);
        }
        if head.row >= at && tail.row < band_end {
            return None;
        }
        let new_head_row = if head.row < at {
            head.row
        } else if head.row < band_end {
            at
        } else {
            head.row - n
        };
        let new_tail_row = if tail.row < band_end { at - 1 } else { tail.row - n };
        if new_head_row > new_tail_row || new_tail_row == 0 {
            return None;
        }
        Some(Range::from_coords(head.col, new_head_row, tail.col, new_tail_row))
    }

    /// The range after inserting `n` columns before column `at`.
    pub fn insert_cols(&self, at: u32, n: u32) -> Option<Range> {
        Some(self.transpose().insert_rows(at, n)?.transpose())
    }

    /// The range after deleting the columns `[at, at + n)`.
    pub fn delete_cols(&self, at: u32, n: u32) -> Option<Range> {
        Some(self.transpose().delete_rows(at, n)?.transpose())
    }

    /// `true` iff inserting rows before `at` would stretch this range
    /// (the insertion point lies strictly inside).
    pub fn row_insert_straddles(&self, at: u32) -> bool {
        self.head().row < at && at <= self.tail().row
    }

    /// `true` iff deleting rows `[at, at + n)` overlaps this range.
    pub fn row_delete_overlaps(&self, at: u32, n: u32) -> bool {
        let band_end = at.saturating_add(n);
        self.head().row < band_end && at <= self.tail().row
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(s: &str) -> Range {
        Range::parse_a1(s).unwrap()
    }

    fn c(s: &str) -> Cell {
        Cell::parse_a1(s).unwrap()
    }

    #[test]
    fn cell_insert_rows() {
        assert_eq!(c("B3").insert_rows(5, 2), Some(c("B3"))); // above: unchanged
        assert_eq!(c("B5").insert_rows(5, 2), Some(c("B7"))); // at: shifts
        assert_eq!(c("B9").insert_rows(5, 2), Some(c("B11")));
        // Pushed off the grid.
        assert_eq!(Cell::new(1, MAX_ROW).insert_rows(1, 1), None);
    }

    #[test]
    fn cell_delete_rows() {
        assert_eq!(c("B3").delete_rows(5, 2), Some(c("B3")));
        assert_eq!(c("B5").delete_rows(5, 2), None); // inside the band
        assert_eq!(c("B6").delete_rows(5, 2), None);
        assert_eq!(c("B7").delete_rows(5, 2), Some(c("B5")));
    }

    #[test]
    fn cell_cols_are_transposed_rows() {
        assert_eq!(c("C2").insert_cols(2, 3), Some(c("F2")));
        assert_eq!(c("A2").insert_cols(2, 3), Some(c("A2")));
        assert_eq!(c("C2").delete_cols(2, 2), None);
        assert_eq!(c("D2").delete_cols(2, 2), Some(c("B2")));
    }

    #[test]
    fn range_insert_rows_stretches_interior() {
        // A2:A10 with rows inserted before 5: interior → stretches.
        assert_eq!(r("A2:A10").insert_rows(5, 3), Some(r("A2:A13")));
        // Entirely above: unchanged.
        assert_eq!(r("A2:A4").insert_rows(5, 3), Some(r("A2:A4")));
        // Entirely below: shifts.
        assert_eq!(r("A6:A8").insert_rows(5, 3), Some(r("A9:A11")));
        // Insert before the head row: shifts (no stretch — Excel moves it).
        assert_eq!(r("A5:A8").insert_rows(5, 3), Some(r("A8:A11")));
    }

    #[test]
    fn range_delete_rows_shrinks_and_refs() {
        // Band inside the range: shrink.
        assert_eq!(r("A2:A10").delete_rows(4, 3), Some(r("A2:A7")));
        // Band covering the whole range: gone (#REF!).
        assert_eq!(r("A4:A6").delete_rows(3, 5), None);
        // Band overlapping the top.
        assert_eq!(r("A4:A10").delete_rows(2, 4), Some(r("A2:A6")));
        // Band overlapping the bottom.
        assert_eq!(r("A2:A6").delete_rows(5, 4), Some(r("A2:A4")));
        // Entirely below the band: shifts up.
        assert_eq!(r("A8:A10").delete_rows(2, 3), Some(r("A5:A7")));
        // Entirely above: unchanged.
        assert_eq!(r("A1:A3").delete_rows(5, 2), Some(r("A1:A3")));
    }

    #[test]
    fn straddle_predicates() {
        assert!(r("A2:A10").row_insert_straddles(5));
        assert!(!r("A2:A10").row_insert_straddles(2)); // at head: pure shift
        assert!(!r("A2:A10").row_insert_straddles(11));
        assert!(r("A2:A10").row_delete_overlaps(10, 5));
        assert!(!r("A2:A10").row_delete_overlaps(11, 5));
        assert!(r("A2:A10").row_delete_overlaps(1, 2));
        assert!(!r("A3:A10").row_delete_overlaps(1, 2));
    }

    #[test]
    fn excel_partial_vs_full_delete_semantics() {
        // Excel's rule, pinned: a delete band that *partially* overlaps a
        // referenced range shrinks it; only a band that covers the range
        // end to end kills the reference (#REF!, i.e. `None`).
        // Band == range exactly.
        assert_eq!(r("A3:A5").delete_rows(3, 3), None);
        // Band strictly larger than the range on both sides.
        assert_eq!(r("A3:A5").delete_rows(2, 5), None);
        // Partial top overlap: surviving rows shift up to the band start.
        assert_eq!(r("A4:A10").delete_rows(2, 4), Some(r("A2:A6")));
        // Partial bottom overlap: range is clipped at the band start.
        assert_eq!(r("A3:A5").delete_rows(4, 10), Some(r("A3:A3")));
        // Band covers the head but the tail survives and shifts up.
        assert_eq!(r("A3:A5").delete_rows(1, 4), Some(r("A1:A1")));
        // A single-cell range inside the band is fully contained.
        assert_eq!(r("B4").delete_rows(3, 3), None);
        // The same rules, transposed onto columns.
        assert_eq!(r("C2:E9").delete_cols(3, 3), None);
        assert_eq!(r("C2:E9").delete_cols(4, 9), Some(r("C2:C9")));
        assert_eq!(r("C2:E9").delete_cols(1, 4), Some(r("A2:A9")));
    }

    #[test]
    fn col_ops_via_transpose() {
        assert_eq!(r("B2:D5").insert_cols(3, 2), Some(r("B2:F5")));
        assert_eq!(r("B2:D5").delete_cols(3, 1), Some(r("B2:C5")));
        assert_eq!(r("C2:C5").delete_cols(2, 3), None);
    }

    #[test]
    fn insert_then_delete_is_identity_for_shifted_ranges() {
        for s in ["A6:A8", "B2:C4", "A10"] {
            let orig = r(s);
            if orig.head().row >= 5 {
                let ins = orig.insert_rows(5, 3).unwrap();
                assert_eq!(ins.delete_rows(5, 3), Some(orig), "{s}");
            }
        }
    }
}
