use std::fmt;

/// Errors produced by geometry and A1-notation operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GridError {
    /// A cell coordinate would fall outside the valid grid (column/row < 1
    /// or beyond [`crate::MAX_COL`]/[`crate::MAX_ROW`]).
    OutOfBounds {
        /// Signed column index that was requested.
        col: i64,
        /// Signed row index that was requested.
        row: i64,
    },
    /// An A1-notation string could not be parsed.
    BadA1(String),
    /// A sheet name is empty, too long, or contains a forbidden character
    /// (`[ ] : \ / ? *`, or a leading/trailing apostrophe).
    BadSheetName(String),
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::OutOfBounds { col, row } => {
                write!(f, "cell position ({col}, {row}) is outside the grid")
            }
            GridError::BadA1(s) => write!(f, "invalid A1 reference: {s:?}"),
            GridError::BadSheetName(s) => write!(f, "invalid sheet name: {s:?}"),
        }
    }
}

impl std::error::Error for GridError {}
