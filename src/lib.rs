//! Workspace umbrella crate: re-exports the TACO reproduction crates so the
//! examples and integration tests can use a single dependency root.
pub use taco_baselines as baselines;
pub use taco_core as core;
pub use taco_engine as engine;
pub use taco_formula as formula;
pub use taco_grid as grid;
pub use taco_obs as obs;
pub use taco_rtree as rtree;
pub use taco_service as service;
pub use taco_store as store;
pub use taco_workload as workload;
