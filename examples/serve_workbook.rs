//! Spawns a `taco_service` server on an ephemeral port, drives a
//! scripted client session over TCP, and prints a summary.
//!
//! ```sh
//! cargo run --release --example serve_workbook
//! ```
//!
//! Serves a workbook named `demo` (no auth). With `TACO_SERVE_HOLD` set,
//! the example instead stays up after printing its `listening on` line
//! and serves until stdin closes (or a `quit` line arrives) — that is
//! how the repl smoke test gets a live server to `:connect` to.

use std::sync::Arc;
use taco_repro::engine::{RecalcMode, Workbook};
use taco_repro::formula::Value;
use taco_repro::grid::{Cell, Range};
use taco_repro::service::{Registry, Server, ServerOptions, ServiceOptions, TcpClient};

fn n(v: f64) -> Value {
    Value::Number(v)
}

fn demo_workbook(rows: u32) -> Workbook {
    let mut wb = Workbook::with_taco();
    let data = wb.add_sheet("Data").expect("fresh name");
    let summary = wb.add_sheet("Summary").expect("fresh name");
    for row in 1..=rows {
        wb.set_value(data, Cell::new(1, row), n(f64::from(row)));
    }
    wb.set_formula(data, Cell::new(2, 1), "=SUM($A$1:A1)").expect("valid");
    wb.autofill(data, Cell::new(2, 1), Range::from_coords(2, 2, 2, rows)).expect("fill");
    wb.set_formula(summary, Cell::new(1, 1), &format!("=Data!B{rows}")).expect("valid");
    wb.recalculate(RecalcMode::Serial);
    wb
}

fn main() {
    let rows: u32 =
        std::env::var("TACO_EXAMPLE_ROWS").ok().and_then(|v| v.parse().ok()).unwrap_or(128).max(4);

    let registry = Arc::new(Registry::new(ServiceOptions::default()));
    registry.add_workbook("demo", demo_workbook(rows), None).expect("register");
    let server = Server::start(Arc::clone(&registry), "127.0.0.1:0", ServerOptions::default())
        .expect("bind ephemeral port");
    let addr = server.local_addr();
    println!("listening on {addr}");

    if std::env::var("TACO_SERVE_HOLD").is_ok() {
        // Serve until stdin closes — an external client drives us.
        let mut line = String::new();
        loop {
            line.clear();
            match std::io::stdin().read_line(&mut line) {
                Ok(0) => break,
                Ok(_) if line.trim() == "quit" => break,
                Ok(_) => {}
                Err(_) => break,
            }
        }
    } else {
        // The scripted session: a TCP client edits, reads, and queries.
        let mut client = TcpClient::connect(addr).expect("connect");
        let sheets = client.open("demo", None, None).expect("open");
        println!("opened demo: sheets {sheets:?}");

        let before = client.get("Summary", Cell::new(1, 1)).expect("read");
        client.set_value("Data", Cell::new(1, 1), n(1000.0)).expect("write");
        let after = client.get("Summary", Cell::new(1, 1)).expect("read");
        println!("rollup before {before} → after {after}");

        client.set_formula("Data", Cell::new(3, 1), "=A1*2").expect("formula");
        client
            .autofill("Data", Cell::new(3, 1), Range::from_coords(3, 2, 3, rows))
            .expect("autofill");
        let deps = client.dependents("Data", Range::cell(Cell::new(1, 1))).expect("query");
        println!("dependents of Data!A1: {} ranges (cross-sheet included)", deps.len());

        let stats = client.stats().expect("stats");
        println!(
            "stats: epoch={} cells={} edits={} batches={} recalcs={} sessions={}",
            stats.epoch, stats.cells, stats.edits, stats.batches, stats.recalcs, stats.sessions
        );
        client.close().expect("close");
    }

    server.shutdown();
    registry.shutdown();
    println!("done");
}
