//! A tiny interactive spreadsheet shell over the TACO-backed engine —
//! handy for poking at compression behaviour by hand.
//!
//! ```sh
//! cargo run --release --example repl
//! ```
//!
//! Commands (one per line; also accepts a script on stdin):
//!
//! ```text
//! A1 = 42                 set a value
//! B1 = =SUM(A1:A10)       set a formula
//! fill B1 B2:B50          autofill from a source cell
//! show B5                 print a cell's value (and formula)
//! trace B5                dependents + precedents of a cell
//! clear A1:B10            clear a range
//! insrows 5 2 / delrows 5 2 / inscols 2 1 / delcols 2 1
//! stats                   graph size + per-pattern compression
//! edges                   list compressed edges
//! :save /path/to/file     persist the sheet (compressed graph included)
//! :open /path/to/file     replace the sheet with a saved one
//! :connect ADDR BOOK [AUTH]  attach to a taco_service server over TCP
//! :metrics                (remote) print the server's Prometheus metrics
//! :trace                  (remote) print the server's span rings as trees
//! :disconnect             detach and return to the local sheet
//! quit
//! ```
//!
//! While connected, edits, `show`, `trace`, `clear`, `fill`, and `stats`
//! run against the remote workbook's first visible sheet instead of the
//! local engine, and `:metrics`/`:trace` fetch the server's
//! observability snapshot and span trees over the wire.

use std::io::{self, BufRead, Write};
use taco_repro::core::PatternType;
use taco_repro::engine::Engine;
use taco_repro::formula::Value;
use taco_repro::grid::{Cell, Range};
use taco_repro::service::TcpClient;

/// A live `:connect` session: the client plus the sheet it operates on.
struct Remote {
    client: TcpClient,
    sheet: String,
}

fn main() {
    let mut engine = Engine::with_taco();
    let mut remote: Option<Remote> = None;
    let stdin = io::stdin();
    let interactive = atty();
    if interactive {
        println!("taco repl — type `help` for commands");
    }
    let mut line = String::new();
    loop {
        if interactive {
            print!("> ");
            let _ = io::stdout().flush();
        }
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        let input = line.trim();
        if input.is_empty() || input.starts_with('#') {
            continue;
        }
        let result = match connection_command(&mut remote, input) {
            Some(r) => r,
            None => match &mut remote {
                Some(r) => run_remote(r, input),
                None => run_command(&mut engine, input),
            },
        };
        match result {
            Ok(true) => break,
            Ok(false) => {}
            Err(msg) => println!("error: {msg}"),
        }
    }
}

/// Handles `:connect` / `:disconnect` regardless of mode. `None` = the
/// input is not a connection command.
fn connection_command(remote: &mut Option<Remote>, input: &str) -> Option<Result<bool, String>> {
    if let Some(rest) = input.strip_prefix(":connect ") {
        let mut parts = rest.split_whitespace();
        let (Some(addr), Some(book)) = (parts.next(), parts.next()) else {
            return Some(Err(":connect ADDR BOOK [AUTH]".to_string()));
        };
        let auth = parts.next();
        let attach = || -> Result<Remote, String> {
            let mut client = TcpClient::connect(addr).map_err(|e| e.to_string())?;
            let sheets = client.open(book, auth, None).map_err(|e| e.to_string())?;
            let sheet = sheets.first().cloned().ok_or("workbook has no visible sheets")?;
            println!("connected to {addr}, workbook {book}, sheet {sheet}");
            Ok(Remote { client, sheet })
        };
        return Some(attach().map(|r| {
            *remote = Some(r);
            false
        }));
    }
    if input == ":disconnect" {
        match remote.take() {
            Some(mut r) => {
                let _ = r.client.close();
                println!("disconnected");
            }
            None => println!("not connected"),
        }
        return Some(Ok(false));
    }
    None
}

/// The remote command subset: edits, reads, traces, and stats against
/// the connected workbook (the service recalculates after every edit,
/// mirroring the local repl's behaviour).
fn run_remote(r: &mut Remote, input: &str) -> Result<bool, String> {
    if input == "quit" || input == "exit" {
        let _ = r.client.close();
        return Ok(true);
    }
    if input == "help" {
        println!("remote ({}): A1 = 42 | B1 = =SUM(A1:A3) | fill SRC RANGE | show CELL", r.sheet);
        println!("trace CELL | clear RANGE | stats | :metrics | :trace | :disconnect | quit");
        return Ok(false);
    }
    if input == ":metrics" {
        let snap = r.client.metrics().map_err(|e| e.to_string())?;
        print!("{}", snap.to_prometheus());
        return Ok(false);
    }
    if input == ":trace" {
        let dump = r.client.trace_dump().map_err(|e| e.to_string())?;
        print_trace(&dump);
        return Ok(false);
    }
    let sheet = r.sheet.clone();
    if input == "stats" {
        let s = r.client.stats().map_err(|e| e.to_string())?;
        println!(
            "remote stats: epoch={} sheets={} cells={} dirty={} edits={} batches={} \
             recalcs={} coalesced={} sessions={}{}",
            s.epoch,
            s.sheets,
            s.cells,
            s.dirty,
            s.edits,
            s.batches,
            s.recalcs,
            s.coalesced,
            s.sessions,
            if s.degraded != 0 { " DEGRADED (read-only until Save)" } else { "" }
        );
        return Ok(false);
    }
    if let Some(rest) = input.strip_prefix("show ") {
        let cell = Cell::parse_a1(rest.trim()).map_err(|e| e.to_string())?;
        let value = r.client.get(&sheet, cell).map_err(|e| e.to_string())?;
        println!("{cell} = {value}");
        return Ok(false);
    }
    if let Some(rest) = input.strip_prefix("trace ") {
        let cell = Cell::parse_a1(rest.trim()).map_err(|e| e.to_string())?;
        let deps = r.client.dependents(&sheet, Range::cell(cell)).map_err(|e| e.to_string())?;
        let precs = r.client.precedents(&sheet, Range::cell(cell)).map_err(|e| e.to_string())?;
        println!("dependents: {}", join_qualified(&deps));
        println!("precedents: {}", join_qualified(&precs));
        return Ok(false);
    }
    if let Some(rest) = input.strip_prefix("clear ") {
        let range = Range::parse_a1(rest.trim()).map_err(|e| e.to_string())?;
        r.client.clear_range(&sheet, range).map_err(|e| e.to_string())?;
        return Ok(false);
    }
    if let Some(rest) = input.strip_prefix("fill ") {
        let mut parts = rest.split_whitespace();
        let src = parts.next().ok_or("fill SRC RANGE")?;
        let targets = parts.next().ok_or("fill SRC RANGE")?;
        let src = Cell::parse_a1(src).map_err(|e| e.to_string())?;
        let targets = Range::parse_a1(targets).map_err(|e| e.to_string())?;
        r.client.autofill(&sheet, src, targets).map_err(|e| e.to_string())?;
        return Ok(false);
    }
    if let Some((lhs, rhs)) = input.split_once('=') {
        let cell = Cell::parse_a1(lhs.trim()).map_err(|e| e.to_string())?;
        let rhs = rhs.trim();
        if let Some(formula) = rhs.strip_prefix('=') {
            r.client.set_formula(&sheet, cell, formula).map_err(|e| e.to_string())?;
        } else if let Ok(n) = rhs.parse::<f64>() {
            r.client.set_value(&sheet, cell, Value::Number(n)).map_err(|e| e.to_string())?;
        } else {
            r.client
                .set_value(&sheet, cell, Value::Text(rhs.to_string()))
                .map_err(|e| e.to_string())?;
        }
        return Ok(false);
    }
    Err(format!("unknown remote command {input:?} (try `help` or `:disconnect`)"))
}

/// Reassembles the dump's flat span rings into trees and prints them
/// indented, one root per traced request (spans whose parent is outside
/// the rings — e.g. the client's own span id — count as roots too).
fn print_trace(dump: &taco_repro::obs::TraceDump) {
    let mut spans: Vec<&taco_repro::obs::SlowSpan> = dump.recent.iter().collect();
    for s in &dump.slow {
        if !spans.iter().any(|r| r.span_id == s.span_id) {
            spans.push(s);
        }
    }
    if spans.is_empty() {
        println!("(no spans recorded)");
        return;
    }
    fn print_subtree(spans: &[&taco_repro::obs::SlowSpan], parent: u64, depth: usize) {
        for s in spans.iter().filter(|s| s.parent_id == parent) {
            println!(
                "{:indent$}{} [{:?}] {:.1} µs  a={} b={}",
                "",
                s.name,
                s.cat,
                s.dur_ns as f64 / 1_000.0,
                s.a,
                s.b,
                indent = depth * 2
            );
            print_subtree(spans, s.span_id, depth + 1);
        }
    }
    let known: std::collections::HashSet<u64> = spans.iter().map(|s| s.span_id).collect();
    let mut seen_roots: Vec<u64> = Vec::new();
    for s in &spans {
        if !known.contains(&s.parent_id) && !seen_roots.contains(&s.parent_id) {
            seen_roots.push(s.parent_id);
        }
    }
    println!("{} spans, {} tree(s):", spans.len(), seen_roots.len());
    for root in seen_roots {
        print_subtree(&spans, root, 0);
    }
    if !dump.slow.is_empty() {
        println!("({} span(s) retained in the slow log)", dump.slow.len());
    }
}

fn join_qualified(ranges: &[(String, Range)]) -> String {
    if ranges.is_empty() {
        return "(none)".to_string();
    }
    let mut parts: Vec<String> =
        ranges.iter().map(|(sheet, r)| format!("{sheet}!{}", r.to_a1())).collect();
    parts.sort();
    parts.join(", ")
}

fn atty() -> bool {
    // Keep the example dependency-free: assume non-interactive when stdin
    // is piped (scripts print no prompts because output order matters).
    std::env::var("TACO_REPL_PROMPT").is_ok()
}

fn run_command(engine: &mut Engine, input: &str) -> Result<bool, String> {
    if input == "quit" || input == "exit" {
        return Ok(true);
    }
    if input == "help" {
        println!("A1 = 42 | B1 = =SUM(A1:A3) | fill SRC RANGE | show CELL | trace CELL");
        println!("clear RANGE | insrows AT N | delrows AT N | inscols AT N | delcols AT N");
        println!("stats | edges | :save PATH | :open PATH | :connect ADDR BOOK [AUTH] | quit");
        return Ok(false);
    }
    if let Some(rest) = input.strip_prefix(":save ") {
        let path = std::path::Path::new(rest.trim());
        taco_repro::engine::save_engine(engine, path).map_err(|e| e.to_string())?;
        println!("saved {} cells to {}", engine.len(), path.display());
        return Ok(false);
    }
    if let Some(rest) = input.strip_prefix(":open ") {
        let path = std::path::Path::new(rest.trim());
        *engine = taco_repro::engine::open_engine(path).map_err(|e| e.to_string())?;
        engine.recalculate();
        println!("opened {} cells from {}", engine.len(), path.display());
        return Ok(false);
    }
    if input == "stats" {
        let s = engine.graph().stats();
        println!(
            "edges={} vertices={} dependencies={} remaining={:.2}%",
            s.edges,
            s.vertices,
            s.dependencies,
            100.0 * s.remaining_fraction()
        );
        for p in [
            PatternType::RR,
            PatternType::RF,
            PatternType::FR,
            PatternType::FF,
            PatternType::RRChain,
        ] {
            let n = s.reduced.get(p);
            if n > 0 {
                println!("  {p:?}: {n} edges reduced");
            }
        }
        return Ok(false);
    }
    if input == "edges" {
        for e in engine.graph().edges() {
            println!("  {:?}: {} -> {} (count {})", e.pattern(), e.prec, e.dep, e.count);
        }
        return Ok(false);
    }
    if let Some(rest) = input.strip_prefix("show ") {
        let cell = Cell::parse_a1(rest.trim()).map_err(|e| e.to_string())?;
        match engine.formula_of(cell) {
            Some(f) => println!("{cell} = ={f} → {}", engine.value(cell)),
            None => println!("{cell} = {}", engine.value(cell)),
        }
        return Ok(false);
    }
    if let Some(rest) = input.strip_prefix("trace ") {
        let cell = Cell::parse_a1(rest.trim()).map_err(|e| e.to_string())?;
        let deps = engine.find_dependents(Range::cell(cell));
        let precs = engine.find_precedents(Range::cell(cell));
        println!("dependents: {}", join(&deps));
        println!("precedents: {}", join(&precs));
        return Ok(false);
    }
    if let Some(rest) = input.strip_prefix("clear ") {
        let range = Range::parse_a1(rest.trim()).map_err(|e| e.to_string())?;
        engine.clear_range(range);
        engine.recalculate();
        return Ok(false);
    }
    if let Some(rest) = input.strip_prefix("fill ") {
        let mut parts = rest.split_whitespace();
        let src = parts.next().ok_or("fill SRC RANGE")?;
        let targets = parts.next().ok_or("fill SRC RANGE")?;
        let src = Cell::parse_a1(src).map_err(|e| e.to_string())?;
        let targets = Range::parse_a1(targets).map_err(|e| e.to_string())?;
        engine.autofill(src, targets).map_err(|e| e.to_string())?;
        engine.recalculate();
        return Ok(false);
    }
    type StructuralFn = fn(&mut Engine, u32, u32) -> taco_repro::engine::EditReceipt;
    for (cmd, f) in [
        ("insrows", Engine::insert_rows as StructuralFn),
        ("delrows", Engine::delete_rows),
        ("inscols", Engine::insert_cols),
        ("delcols", Engine::delete_cols),
    ] {
        if let Some(rest) = input.strip_prefix(cmd) {
            let nums: Vec<u32> = rest
                .split_whitespace()
                .map(|s| s.parse().map_err(|_| format!("{cmd} AT N")))
                .collect::<Result<_, _>>()?;
            if nums.len() != 2 {
                return Err(format!("{cmd} AT N"));
            }
            let receipt = f(engine, nums[0], nums[1]);
            if !receipt.dirty.is_empty() {
                println!("  {} dirty range(s) routed", receipt.dirty.len());
            }
            engine.recalculate();
            return Ok(false);
        }
    }
    // Assignment: `CELL = value-or-formula`.
    if let Some((lhs, rhs)) = input.split_once('=') {
        let cell = Cell::parse_a1(lhs.trim()).map_err(|e| e.to_string())?;
        let rhs = rhs.trim();
        if let Some(formula) = rhs.strip_prefix('=') {
            engine.set_formula(cell, formula).map_err(|e| e.to_string())?;
        } else if let Ok(n) = rhs.parse::<f64>() {
            engine.set_value(cell, Value::Number(n));
        } else {
            engine.set_value(cell, Value::Text(rhs.to_string()));
        }
        engine.recalculate();
        return Ok(false);
    }
    Err(format!("unknown command {input:?} (try `help`)"))
}

fn join(ranges: &[Range]) -> String {
    if ranges.is_empty() {
        return "(none)".to_string();
    }
    let mut parts: Vec<String> = ranges.iter().map(|r| r.to_a1()).collect();
    parts.sort();
    parts.join(", ")
}
