//! A realistic engine workload: a sales dashboard with derived columns,
//! per-group running totals (the Fig. 2 shape), VLOOKUP rate conversion,
//! and grand totals — then an interactive edit, showing how the formula
//! graph drives "return control to the user".
//!
//! ```sh
//! cargo run --release --example sales_dashboard
//! ```

use std::time::Instant;
use taco_repro::engine::Engine;
use taco_repro::formula::Value;
use taco_repro::grid::{Cell, Range};

/// Row count: 5 000 by default, overridable for quick smoke runs.
fn rows() -> u32 {
    std::env::var("TACO_EXAMPLE_ROWS").ok().and_then(|s| s.parse().ok()).unwrap_or(5_000).max(3)
}

fn build(mut e: Engine) -> Engine {
    let rows = rows();
    // Column A: region id (1..=5), column B: units, column C: unit price.
    for row in 1..=rows {
        e.set_value(Cell::new(1, row), Value::Number(f64::from(row % 5 + 1)));
        e.set_value(Cell::new(2, row), Value::Number(f64::from(row % 7 + 1)));
        e.set_value(Cell::new(3, row), Value::Number(10.0 + f64::from(row % 3)));
    }
    // Currency table: F1:G3 (region → fx rate).
    for (i, rate) in [1.0, 1.1, 0.9].iter().enumerate() {
        e.set_value(Cell::new(6, i as u32 + 1), Value::Number(i as f64 + 1.0));
        e.set_value(Cell::new(7, i as u32 + 1), Value::Number(*rate));
    }

    // D: revenue (derived column) = B*C — autofilled.
    e.set_formula(Cell::new(4, 1), "=B1*C1").unwrap();
    e.autofill(Cell::new(4, 1), Range::from_coords(4, 2, 4, rows)).unwrap();

    // E: running total = SUM($D$1:D row) — FR cumulative.
    e.set_formula(Cell::new(5, 1), "=SUM($D$1:D1)").unwrap();
    e.autofill(Cell::new(5, 1), Range::from_coords(5, 2, 5, rows)).unwrap();

    // H: fx-adjusted revenue via a fixed-table lookup (FF).
    e.set_formula(Cell::new(8, 1), "=D1*VLOOKUP(1,$F$1:$G$3,2,FALSE)").unwrap();
    e.autofill(Cell::new(8, 1), Range::from_coords(8, 2, 8, rows)).unwrap();

    // Grand total.
    e.set_formula(Cell::parse_a1("J1").unwrap(), &format!("=SUM(H1:H{rows})")).unwrap();
    e.recalculate();
    e
}

fn main() {
    println!("building {}-row dashboard with TACO and NoComp backends…", rows());
    let t0 = Instant::now();
    let mut taco = build(Engine::with_taco());
    let taco_build = t0.elapsed();
    let t0 = Instant::now();
    let mut nocomp = build(Engine::with_nocomp());
    let nocomp_build = t0.elapsed();

    let j1 = Cell::parse_a1("J1").unwrap();
    assert_eq!(taco.value(j1), nocomp.value(j1), "engines must agree");
    println!("grand total J1 = {}", taco.value(j1));
    println!(
        "graph edges: TACO {} vs NoComp {}",
        taco.graph().num_edges(),
        nocomp.graph().num_edges()
    );
    println!(
        "end-to-end build: TACO {:.0} ms, NoComp {:.0} ms",
        taco_build.as_secs_f64() * 1e3,
        nocomp_build.as_secs_f64() * 1e3
    );

    // The interactive edit: bump one unit count near the top. The engine
    // must find every affected formula before returning control.
    let edit = Cell::new(2, 3);
    let r_taco = taco.set_value(edit, Value::Number(99.0));
    let r_nocomp = nocomp.set_value(edit, Value::Number(99.0));
    let dirty: u64 = r_taco.dirty.iter().map(Range::area).sum();
    println!("\nedit B3 → {dirty} dependent cells must be marked dirty");
    println!(
        "time to identify dependents (return-control latency): TACO {:?} vs NoComp {:?}",
        r_taco.control_latency, r_nocomp.control_latency
    );

    taco.recalculate();
    nocomp.recalculate();
    assert_eq!(taco.value(j1), nocomp.value(j1));
    println!("after recalc, J1 = {}", taco.value(j1));
}
