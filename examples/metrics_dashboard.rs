//! A live metrics dashboard: spawns a `taco_service` server on an
//! ephemeral port, drives a mixed workload over TCP (edits, autofills,
//! full and demand recalcs, reads, a save), polls [`Client::metrics`]
//! between rounds, and renders the final snapshot as a text dashboard —
//! per-operation latency percentiles, recalc histograms, WAL counters,
//! and the slow-op log.
//!
//! ```sh
//! cargo run --release --example metrics_dashboard
//! ```
//!
//! [`Client::metrics`]: taco_repro::service::Client::metrics

use std::sync::Arc;
use taco_repro::engine::{PersistOptions, PersistentWorkbook, RecalcMode, Workbook};
use taco_repro::formula::Value;
use taco_repro::grid::{Cell, Range};
use taco_repro::obs::MetricsSnapshot;
use taco_repro::service::{Registry, Server, ServerOptions, ServiceOptions, TcpClient};

fn n(v: f64) -> Value {
    Value::Number(v)
}

fn demo_workbook(rows: u32) -> Workbook {
    let mut wb = Workbook::with_taco();
    let data = wb.add_sheet("Data").expect("fresh name");
    let summary = wb.add_sheet("Summary").expect("fresh name");
    for row in 1..=rows {
        wb.set_value(data, Cell::new(1, row), n(f64::from(row)));
    }
    wb.set_formula(data, Cell::new(2, 1), "=SUM($A$1:A1)").expect("valid");
    wb.autofill(data, Cell::new(2, 1), Range::from_coords(2, 2, 2, rows)).expect("fill");
    wb.set_formula(summary, Cell::new(1, 1), &format!("=Data!B{rows}")).expect("valid");
    wb.recalculate(RecalcMode::Serial);
    wb
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders one snapshot as the dashboard.
fn render(snap: &MetricsSnapshot) {
    println!("── request latency ─────────────────────────────────────────");
    println!("{:<28} {:>7} {:>9} {:>9} {:>9}", "op", "count", "p50", "p90", "p99");
    let mut requests: Vec<_> =
        snap.histograms.iter().filter(|h| h.name == "taco_request_ns" && h.count > 0).collect();
    requests.sort_by_key(|h| std::cmp::Reverse(h.count));
    for h in requests {
        println!(
            "{:<28} {:>7} {:>9} {:>9} {:>9}",
            h.labels,
            h.count,
            fmt_ns(h.p50),
            fmt_ns(h.p90),
            fmt_ns(h.p99)
        );
    }
    println!("── engine ──────────────────────────────────────────────────");
    for h in &snap.histograms {
        if h.name.starts_with("taco_recalc") && h.count > 0 {
            println!(
                "{:<28} {:>7} p50={} p99={}",
                format!("{}{{{}}}", h.name, h.labels),
                h.count,
                fmt_ns(h.p50),
                fmt_ns(h.p99)
            );
        }
    }
    for g in &snap.gauges {
        if g.name.starts_with("taco_graph") || g.name == "taco_cross_edges" {
            println!("{:<28} {:>7}", format!("{}{{{}}}", g.name, g.labels), g.value);
        }
    }
    println!("── store / service counters ────────────────────────────────");
    let mut counters: Vec<_> = snap.counters.iter().filter(|c| c.value > 0).collect();
    counters.sort_by(|a, b| a.name.cmp(&b.name));
    for c in counters {
        println!("{:<40} {:>10}", c.name, c.value);
    }
    if !snap.slow_spans.is_empty() {
        println!("── slow ops (over threshold) ───────────────────────────────");
        for s in snap.slow_spans.iter().take(5) {
            println!("{:<20} {:<12} dur={}", s.name, s.cat.label(), fmt_ns(s.dur_ns));
        }
    }
}

fn main() {
    let rows: u32 =
        std::env::var("TACO_EXAMPLE_ROWS").ok().and_then(|v| v.parse().ok()).unwrap_or(128).max(8);
    let rounds: u32 = if rows <= 64 { 3 } else { 5 };

    let path = std::env::temp_dir().join(format!("taco_dashboard_{}.taco", std::process::id()));
    let wal = taco_repro::engine::wal_path(&path);
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&wal).ok();
    let pw = PersistentWorkbook::create(&path, demo_workbook(rows), PersistOptions::default())
        .expect("create persistent backing");

    let registry = Arc::new(Registry::new(ServiceOptions::default()));
    registry.add_persistent("demo", pw, None).expect("register");
    let server = Server::start(Arc::clone(&registry), "127.0.0.1:0", ServerOptions::default())
        .expect("bind ephemeral port");
    println!("listening on {}", server.local_addr());

    let mut client = TcpClient::connect(server.local_addr()).expect("connect");
    client.open("demo", None, None).expect("open");

    for round in 1..=rounds {
        // A mixed round: point edits, a formula + autofill, a demand-driven
        // viewport read, a full recalc barrier, and snapshot reads.
        for i in 0..8u32 {
            let row = (round * 7 + i) % rows + 1;
            client.set_value("Data", Cell::new(1, row), n(f64::from(row * round))).expect("edit");
        }
        client
            .set_formula("Data", Cell::new(3, round), &format!("=B{}*10", round))
            .expect("formula");
        client
            .get_range_fresh("Data", Range::from_coords(1, 1, 3, rows.min(12)))
            .expect("viewport");
        client.recalc().expect("recalc");
        client.get("Summary", Cell::new(1, 1)).expect("read");

        let snap = client.metrics().expect("metrics poll");
        let requests: u64 =
            snap.histograms.iter().filter(|h| h.name == "taco_request_ns").map(|h| h.count).sum();
        let recalcs: u64 =
            snap.counters.iter().filter(|c| c.name == "taco_recalcs_total").map(|c| c.value).sum();
        println!("poll {round}/{rounds}: {requests} requests, {recalcs} recalcs");
    }
    client.save().expect("save folds the WAL");

    let snap = client.metrics().expect("final metrics");
    render(&snap);
    // The same snapshot, machine-readable both ways.
    println!(
        "prometheus exposition: {} lines; json: {} bytes",
        snap.to_prometheus().lines().count(),
        snap.to_json().len()
    );

    client.close().expect("close");
    server.shutdown();
    registry.shutdown();
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&wal).ok();
    println!("done");
}
