//! Build → save → reopen → verify: the instant-reopen story end to end.
//!
//! ```sh
//! cargo run --release --example persist_reopen
//! ```
//!
//! Builds a multi-sheet workbook from the persistence workload's edit
//! script, saves it with `taco_store`, reopens it, and verifies the
//! reopened workbook recalculates **bit-identically** to the original —
//! then pushes an edit burst through the write-ahead log, simulates a
//! crash by tearing the final WAL record, and reopens again. Prints the
//! binary snapshot size against the serde-JSON `GraphSnapshot` baseline
//! (the pre-`taco_store` persistence path).
//!
//! `TACO_EXAMPLE_ROWS` scales the per-sheet row count (default 64).

use taco_repro::engine::{
    EditRecord, PersistOptions, PersistentWorkbook, RecalcMode, SheetId, Workbook,
};
use taco_repro::workload::persistence::{gen_persist_workload, persist_enron_like, PersistParams};

fn rows() -> u32 {
    std::env::var("TACO_EXAMPLE_ROWS").ok().and_then(|s| s.parse().ok()).unwrap_or(64)
}

fn main() {
    let params = PersistParams { rows: rows(), ..persist_enron_like() };
    let w = gen_persist_workload(&params);
    let mut wb = Workbook::with_taco();
    for rec in &w.build {
        wb.apply_edit(rec).expect("build script applies");
    }
    let evaluated = wb.recalculate(RecalcMode::Parallel { threads: 4 });
    println!(
        "built {} sheets / {} edits, evaluated {evaluated} formula cells",
        wb.sheet_count(),
        w.build.len()
    );

    // Size: binary container vs the serde-JSON GraphSnapshot baseline.
    let image = wb.to_image();
    let binary = taco_repro::store::encode_workbook(&image).expect("encode");
    let json_graphs: usize = (0..wb.sheet_count())
        .map(|i| {
            serde_json::to_string(&wb.sheet(SheetId(i)).graph().snapshot()).expect("json").len()
        })
        .sum();
    println!(
        "snapshot: {} bytes binary (graphs alone would be {json_graphs} bytes as serde-JSON — \
         {:.1}x larger before even counting cells)",
        binary.len(),
        json_graphs as f64 / binary.len() as f64
    );

    // Save, reopen, verify bit-identical values and a bit-identical
    // follow-up recalculation.
    let path =
        std::env::temp_dir().join(format!("taco_persist_reopen_{}.taco", std::process::id()));
    let wal = taco_repro::engine::wal_path(&path);
    wb.save(&path).expect("save");
    let mut reopened = Workbook::open(&path).expect("reopen");
    verify_identical(&wb, &mut reopened, "after save/open");
    println!("reopen: bit-identical ✔ (no recompression — graphs restored edge for edge)");

    // The WAL path: burst of edits, fsync, tear the last record, reopen.
    let mut pers = PersistentWorkbook::create(
        &path,
        wb,
        PersistOptions { compact_after_records: 0, sync_every_records: 8 },
    )
    .expect("create persistent workbook");
    for rec in &w.burst {
        pers.log_edit(rec).expect("burst edit");
    }
    pers.sync().expect("fsync point");
    println!(
        "logged {} burst edits into the WAL ({} bytes)",
        w.burst.len(),
        std::fs::metadata(&wal).expect("wal").len()
    );

    let mut live = pers;
    live.recalculate(RecalcMode::Serial);

    // Crash simulation: chop the tail off the last WAL record.
    let bytes = std::fs::read(&wal).expect("wal bytes");
    std::fs::write(&wal, &bytes[..bytes.len() - 3]).expect("tear");
    let mut crashed = Workbook::open(&path).expect("reopen after crash");
    crashed.recalculate(RecalcMode::Serial);
    // All but the torn final edit survived.
    let (survived, total) = (count_applied(&crashed, &w.burst), w.burst.len());
    println!("crash-simulated reopen: {survived}/{total} burst edits survived the torn tail");

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&wal).ok();
    println!("done");
}

/// Panics unless `b` holds exactly `a`'s values (bit-identical recalc).
fn verify_identical(a: &Workbook, b: &mut Workbook, ctx: &str) {
    assert_eq!(a.sheet_count(), b.sheet_count(), "{ctx}: sheet count");
    b.recalculate(RecalcMode::Serial);
    for i in 0..a.sheet_count() {
        let id = SheetId(i);
        for (cell, content) in a.sheet(id).cells() {
            assert_eq!(b.value(id, cell), *content.value(), "{ctx}: sheet {i} {cell}");
        }
    }
}

/// How many burst edits are visible in the reopened workbook (the torn
/// tail drops trailing records).
fn count_applied(wb: &Workbook, burst: &[EditRecord]) -> usize {
    // Count from the back: the first record from the end whose effect is
    // visible bounds the surviving prefix.
    for (i, rec) in burst.iter().enumerate().rev() {
        let visible = match rec {
            EditRecord::SetValue { sheet, cell, value } => {
                (*sheet as usize) < wb.sheet_count()
                    && wb.value(SheetId(*sheet as usize), *cell) == *value
            }
            EditRecord::SetFormula { sheet, cell, src } => {
                (*sheet as usize) < wb.sheet_count()
                    && wb.formula_of(SheetId(*sheet as usize), *cell).as_deref()
                        == Some(src.trim_start_matches('='))
            }
            EditRecord::ClearRange { sheet, range } => {
                (*sheet as usize) < wb.sheet_count()
                    && range.cells().all(|c| wb.value(SheetId(*sheet as usize), c).is_empty())
            }
            EditRecord::AddSheet { name } => wb.sheet_id(name).is_some(),
            // A structural edit's effect can't be probed cell-by-cell from
            // the outside; skip it and let a neighbouring record decide.
            EditRecord::Structural { .. } => continue,
        };
        if visible {
            return i + 1;
        }
    }
    0
}
