//! Per-pattern compression report over a corpus (or one real `.xlsx`):
//! which tabular-locality patterns carry the compression, sheet by sheet.
//!
//! ```sh
//! cargo run --release --example compression_report [file.xlsx]
//! ```

use taco_repro::core::{Config, FormulaGraph, PatternType};
use taco_repro::workload::{enron_like, xlsx};

fn main() {
    let args: Vec<String> = std::env::args().collect();

    let sheets: Vec<(String, Vec<taco_repro::core::Dependency>)> = if let Some(path) = args.get(1) {
        let report = xlsx::load_workbook(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("failed to load {path}: {e}");
            std::process::exit(1);
        });
        vec![(path.clone(), report.deps)]
    } else {
        enron_like(0.15).generate().into_iter().map(|s| (s.name, s.deps)).collect()
    };

    println!(
        "{:<12} {:>9} {:>8} {:>7} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "sheet", "deps", "edges", "remain", "RR", "RF", "FR", "FF", "Chain", "Single"
    );
    for (name, deps) in &sheets {
        let g = FormulaGraph::build(Config::taco_full(), deps.iter().copied());
        let s = g.stats();
        let singles = g.edges().filter(|e| e.is_single()).count();
        println!(
            "{:<12} {:>9} {:>8} {:>6.2}% {:>9} {:>8} {:>8} {:>8} {:>8} {:>8}",
            name,
            s.dependencies,
            s.edges,
            100.0 * s.remaining_fraction(),
            s.reduced.get(PatternType::RR),
            s.reduced.get(PatternType::RF),
            s.reduced.get(PatternType::FR),
            s.reduced.get(PatternType::FF),
            s.reduced.get(PatternType::RRChain),
            singles
        );
    }
}
