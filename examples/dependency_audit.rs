//! Formula auditing (the Excel "Trace Dependents / Trace Precedents" use
//! case from §I): load a workbook — a real `.xlsx` if a path is given,
//! otherwise a generated one — and trace a cell's dependency neighbourhood
//! on the compressed graph.
//!
//! ```sh
//! cargo run --release --example dependency_audit [file.xlsx [CELL]]
//! ```

use taco_repro::core::{Config, FormulaGraph};
use taco_repro::grid::{Cell, Range};
use taco_repro::workload::{enron_like, xlsx};

fn main() {
    let args: Vec<String> = std::env::args().collect();

    let (label, deps, default_probe) = if let Some(path) = args.get(1) {
        let report = xlsx::load_workbook(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("failed to load {path}: {e}");
            std::process::exit(1);
        });
        println!(
            "loaded {path}: {} formulas parsed, {} skipped, {} dependencies",
            report.formulas_parsed,
            report.formulas_skipped,
            report.deps.len()
        );
        let probe = report.deps.first().map(|d| d.prec.head()).unwrap_or(Cell::new(1, 1));
        (path.clone(), report.deps, probe)
    } else {
        // No file given: audit a mid-sized generated sheet.
        let corpus = enron_like(0.1);
        let sheet = corpus.generate().pop().expect("non-empty corpus");
        let probe = sheet.hot_cells.first().copied().unwrap_or(Cell::new(1, 1));
        println!(
            "no xlsx given; auditing synthetic sheet {} ({} deps)",
            sheet.name,
            sheet.deps.len()
        );
        (sheet.name.clone(), sheet.deps, probe)
    };

    let probe =
        args.get(2).map(|s| Cell::parse_a1(s).expect("valid A1 cell")).unwrap_or(default_probe);

    let graph = FormulaGraph::build(Config::taco_full(), deps.iter().copied());
    let stats = graph.stats();
    println!(
        "[{label}] graph: {} edges for {} dependencies ({:.2}% remaining)",
        stats.edges,
        stats.dependencies,
        100.0 * stats.remaining_fraction()
    );

    let (dependents, dstats) = graph.find_dependents_with_stats(Range::cell(probe));
    let dep_cells: u64 = dependents.iter().map(Range::area).sum();
    println!("\ntrace dependents of {probe}: {dep_cells} cells in {} ranges", dependents.len());
    for r in dependents.iter().take(12) {
        println!("  ↳ {r}");
    }
    if dependents.len() > 12 {
        println!("  … and {} more ranges", dependents.len() - 12);
    }
    println!(
        "  (BFS touched {} edges, {} R-tree searches)",
        dstats.edges_accessed, dstats.rtree_searches
    );

    let precedents = graph.find_precedents(Range::cell(probe));
    let prec_cells: u64 = precedents.iter().map(Range::area).sum();
    println!("\ntrace precedents of {probe}: {prec_cells} cells in {} ranges", precedents.len());
    for r in precedents.iter().take(12) {
        println!("  ↲ {r}");
    }
}
