//! Quickstart: build a compressed formula graph from formulae, query it,
//! and inspect the compression.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use taco_repro::core::{Config, Dependency, FormulaGraph};
use taco_repro::formula::Formula;
use taco_repro::grid::{Cell, Range};

fn main() {
    // A small sheet: column C holds autofilled sliding-window sums
    // (=SUM(A1:B3) dragged down), column D a cumulative total, and E1 one
    // grand total.
    let formulas: Vec<(&str, &str)> = vec![
        ("C1", "=SUM(A1:B3)"),
        ("C2", "=SUM(A2:B4)"),
        ("C3", "=SUM(A3:B5)"),
        ("C4", "=SUM(A4:B6)"),
        ("D1", "=SUM($C$1:C1)"),
        ("D2", "=SUM($C$1:C2)"),
        ("D3", "=SUM($C$1:C3)"),
        ("D4", "=SUM($C$1:C4)"),
        ("E1", "=SUM(D1:D4)"),
    ];

    // Parse each formula and feed its references into a TACO graph.
    let mut taco = FormulaGraph::new(Config::taco_full());
    let mut nocomp = FormulaGraph::new(Config::nocomp());
    for (cell, src) in &formulas {
        let cell = Cell::parse_a1(cell).expect("valid A1");
        let f = Formula::parse(src).expect("valid formula");
        for r in &f.refs {
            taco.add_dependency(&Dependency::from_ref(&r.rref, cell));
            nocomp.add_dependency(&Dependency::from_ref(&r.rref, cell));
        }
    }

    println!("uncompressed edges: {}", nocomp.num_edges());
    println!("compressed edges:   {}", taco.num_edges());
    for e in taco.edges() {
        println!("  {:?}: {} -> {}  ({} dependencies)", e.pattern(), e.prec, e.dep, e.count);
    }

    // Querying works directly on the compressed graph — no decompression.
    let probe = Range::parse_a1("A3").unwrap();
    let dependents = taco.find_dependents(probe);
    println!("\ndependents of {probe}: {}", join(&dependents));

    let probe = Range::parse_a1("E1").unwrap();
    let precedents = taco.find_precedents(probe);
    println!("precedents of {probe}: {}", join(&precedents));

    // Maintenance is incremental: clearing C2 splits its run.
    taco.clear_cells(Range::parse_a1("C2").unwrap());
    println!("\nafter clearing C2: {} edges", taco.num_edges());
    let dependents = taco.find_dependents(Range::parse_a1("A3").unwrap());
    println!("dependents of A3:  {}", join(&dependents));
}

fn join(ranges: &[Range]) -> String {
    let mut parts: Vec<String> = ranges.iter().map(|r| r.to_a1()).collect();
    parts.sort();
    parts.join(", ")
}
