//! Crash torture: a persistence cycle on a deliberately hostile disk.
//!
//! ```sh
//! cargo run --release --example crash_torture
//! ```
//!
//! Runs a save → edit burst → compaction → structural-burst cycle over
//! `taco_store`'s fault-injecting [`FaultVfs`], twice: once on a flaky
//! disk (periodic short writes and failed fsyncs), once on a disk that
//! crashes outright two-thirds of the way through the cycle's I/O. Each
//! act prints the injected-fault log as it happened, then reopens the
//! durable image the way a process restart would and proves the
//! recovered workbook is **bit-identical to a clean prefix** of the
//! edit order: no half-applied edit, no double-applied structural op,
//! nothing invented.
//!
//! `TACO_EXAMPLE_ROWS` scales the per-sheet row count (default 48).
//!
//! [`FaultVfs`]: taco_repro::store::FaultVfs

use std::path::{Path, PathBuf};
use std::sync::Arc;
use taco_repro::engine::{PersistOptions, PersistentWorkbook, Workbook};
use taco_repro::store::{encode_workbook, EditRecord, FaultPlan, FaultVfs, StoreError, Vfs};
use taco_repro::workload::persistence::{
    gen_persist_workload, persist_enron_like, PersistParams, PersistWorkload,
};

fn rows() -> u32 {
    std::env::var("TACO_EXAMPLE_ROWS").ok().and_then(|s| s.parse().ok()).unwrap_or(48)
}

/// Canonical fingerprint: the encoded snapshot image (deterministic —
/// structural replay was made order-stable exactly so this holds).
fn fingerprint(wb: &Workbook) -> Vec<u8> {
    encode_workbook(&wb.to_image()).expect("encode")
}

fn build_workbook(wl: &PersistWorkload) -> Workbook {
    let mut wb = Workbook::with_taco();
    for rec in &wl.build {
        wb.apply_edit(rec).expect("build script applies");
    }
    wb
}

/// The post-save edit order: the preset's burst plus a structural tail
/// (row insert + column delete) whose double application could not hide.
fn post_edits(wl: &PersistWorkload) -> Vec<EditRecord> {
    use taco_repro::core::StructuralOp;
    let mut edits = wl.burst.clone();
    edits.push(EditRecord::Structural { sheet: 0, op: StructuralOp::InsertRows { at: 2, n: 2 } });
    edits.push(EditRecord::SetValue {
        sheet: 0,
        cell: taco_repro::grid::Cell::new(1, 2),
        value: taco_repro::formula::Value::Number(123.5),
    });
    edits.push(EditRecord::Structural { sheet: 0, op: StructuralOp::DeleteCols { at: 2, n: 1 } });
    edits
}

/// One full persistence cycle over `vfs`; stops at the first storage
/// error (once the log cannot be extended, nothing further may be
/// logged) and reports how many post-save edits were attempted.
fn run_cycle(
    vfs: Arc<dyn Vfs>,
    path: &Path,
    wl: &PersistWorkload,
    post: &[EditRecord],
) -> Result<(), (usize, StoreError)> {
    let opts = PersistOptions { compact_after_records: 0, sync_every_records: 1 };
    let wb = build_workbook(wl);
    let mut pers = PersistentWorkbook::create_with(vfs, path, wb, opts).map_err(|e| (0, e))?;
    let (burst, tail) = post.split_at(wl.burst.len());
    for (i, rec) in burst.iter().enumerate() {
        pers.log_edit(rec).map_err(|e| (i, e))?;
    }
    pers.compact().map_err(|e| (burst.len(), e))?;
    for (i, rec) in tail.iter().enumerate() {
        pers.log_edit(rec).map_err(|e| (burst.len() + i, e))?;
    }
    pers.sync().map_err(|e| (post.len(), e))?;
    Ok(())
}

fn main() {
    let params = PersistParams { rows: rows(), ..persist_enron_like() };
    let wl = gen_persist_workload(&params);
    let post = post_edits(&wl);
    let path = PathBuf::from("book.taco");
    println!(
        "cycle: save {} build edits, log {} more (incl. {} structural), compact mid-way",
        wl.build.len(),
        post.len(),
        3
    );

    // Fault-free dry run: counts the cycle's I/O operations so the
    // crash point can land two-thirds of the way through.
    let dry = FaultVfs::pristine(11);
    run_cycle(Arc::new(dry.clone()), &path, &wl, &post).expect("fault-free cycle completes");
    let total_ops = dry.op_count();
    let crash_at = total_ops * 2 / 3;
    println!("dry run: {total_ops} disk operations; torture will crash at op {crash_at}");

    // Clean prefix states: fps[i] = build + first i post-save edits.
    let fps: Vec<Vec<u8>> = {
        let mut wb = build_workbook(&wl);
        let mut fps = vec![fingerprint(&wb)];
        for rec in &post {
            wb.apply_edit(rec).expect("prefix edit applies");
            fps.push(fingerprint(&wb));
        }
        fps
    };

    // Act 1 — a flaky disk: occasional short writes and failed fsyncs.
    // The cycle stops at its first storage error (the log discipline:
    // once the log cannot be extended, nothing further may be logged).
    println!("\n== act 1: flaky disk (short writes + failing fsyncs) ==");
    let flaky = FaultVfs::new(FaultPlan {
        short_write_every: 33,
        fail_fsync_every: 89,
        ..FaultPlan::none(11)
    });
    torture(Arc::new(flaky.clone()), &flaky, &path, &wl, &post, &fps);

    // Act 2 — a hard crash mid-cycle: the durable image freezes at the
    // crash point; every later operation errors.
    println!("\n== act 2: hard crash at op {crash_at}/{total_ops} ==");
    let crashy = FaultVfs::new(FaultPlan { crash_at_op: Some(crash_at), ..FaultPlan::none(11) });
    torture(Arc::new(crashy.clone()), &crashy, &path, &wl, &post, &fps);

    println!("\ndone");
}

/// Runs the cycle over a faulty disk, prints the injected-fault log,
/// then reopens the durable image the way a restart would and asserts
/// the recovered state is bit-identical to a clean prefix of the edit
/// order.
fn torture(
    vfs: Arc<dyn Vfs>,
    disk: &FaultVfs,
    path: &Path,
    wl: &PersistWorkload,
    post: &[EditRecord],
    fps: &[Vec<u8>],
) {
    let attempted = match run_cycle(vfs, path, wl, post) {
        Ok(()) => {
            println!("cycle completed despite the faults");
            post.len()
        }
        Err((at, e)) => {
            println!("cycle stopped at post-save edit {at}/{}: {e}", post.len());
            at
        }
    };

    let hits = disk.hits();
    println!(
        "injected faults: {} short writes, {} failed fsyncs, {} crash refusals",
        hits.short_writes, hits.failed_fsyncs, hits.crashes
    );
    for line in disk.fault_log().iter().take(8) {
        println!("  fault: {line}");
    }

    // Restart: reopen whatever the disk durably holds (a torn WAL tail
    // is truncated away on replay).
    let frozen: Arc<dyn Vfs> = Arc::new(disk.reopen_from_crash());
    let recovered = Workbook::open_with(frozen, path).expect("snapshot survives the faults");
    let fp = fingerprint(&recovered);
    let prefix = fps.iter().position(|p| *p == fp).expect(
        "recovered state must be bit-identical to a clean prefix of the edit order \
         (anything else means a torn or double-applied edit)",
    );
    println!(
        "recovered = clean prefix of {prefix}/{} post-save edits (attempted {attempted}) — \
         bit-identical ✔",
        post.len()
    );
}
