//! Workbook report: a cross-sheet rollup across eight region sheets plus
//! a summary sheet, recalculated with the parallel sheet scheduler.
//!
//! ```sh
//! cargo run --release --example workbook_report
//! ```
//!
//! Each `Region k` sheet holds a unit column, an autofilled cumulative
//! column, and a running grand total chained from the previous region
//! (`='Region k-1'!C1+…`). The `Summary` sheet pulls every region's total
//! through quoted cross-sheet references and must agree with the chain.
//! The whole workbook is recalculated twice — serial and parallel — and
//! the values must match bit for bit. `TACO_EXAMPLE_ROWS` scales the
//! per-region row count (default 400).

use taco_repro::engine::{RecalcMode, SheetId, Value, Workbook};
use taco_repro::grid::{Cell, Range};

const REGIONS: usize = 8;

fn rows_from_env() -> u32 {
    std::env::var("TACO_EXAMPLE_ROWS").ok().and_then(|s| s.parse().ok()).unwrap_or(400).max(2)
}

/// Builds the workbook: eight data sheets plus the rollup sheet.
fn build(rows: u32) -> Workbook {
    let mut wb = Workbook::with_taco();
    let regions: Vec<SheetId> = (1..=REGIONS)
        .map(|k| wb.add_sheet(&format!("Region {k}")).expect("fresh sheet name"))
        .collect();
    let summary = wb.add_sheet("Summary").expect("fresh sheet name");

    for (i, &id) in regions.iter().enumerate() {
        // Column A: deterministic per-region unit counts.
        for row in 1..=rows {
            let units = f64::from((row * (i as u32 + 3)) % 97);
            wb.set_value(id, Cell::new(1, row), Value::Number(units));
        }
        // Column B: cumulative units, the FR autofill shape.
        wb.set_formula(id, Cell::new(2, 1), "=SUM($A$1:A1)").expect("valid formula");
        wb.autofill(id, Cell::new(2, 1), Range::from_coords(2, 2, 2, rows)).expect("fill");
        // C1: running grand total chained across the region sheets.
        if i == 0 {
            wb.set_formula(id, Cell::new(3, 1), &format!("=B{rows}")).expect("valid formula");
        } else {
            wb.set_formula(id, Cell::new(3, 1), &format!("='Region {i}'!C1+B{rows}"))
                .expect("valid formula");
        }
    }
    // Summary: one row per region plus the grand total.
    for k in 1..=REGIONS {
        wb.set_formula(summary, Cell::new(1, k as u32), &format!("='Region {k}'!B{rows}"))
            .expect("valid formula");
    }
    wb.set_formula(summary, Cell::new(2, 1), &format!("=SUM(A1:A{REGIONS})"))
        .expect("valid formula");
    wb
}

fn main() {
    let rows = rows_from_env();
    println!(
        "workbook: {} sheets ({} regions × {rows} rows + summary), {} cross-sheet edges",
        REGIONS + 1,
        REGIONS,
        build(rows).cross_edge_count()
    );

    // Recalculate the same workbook serially and in parallel.
    let mut serial = build(rows);
    let evaluated = serial.recalculate(RecalcMode::Serial);
    let mut parallel = build(rows);
    parallel.recalculate(RecalcMode::Parallel { threads: 4 });

    let summary = serial.sheet_id("Summary").expect("summary exists");
    let last_region = serial.sheet_id(&format!("Region {REGIONS}")).expect("region exists");
    println!("levels: {:?}", serial.sheet_levels());
    println!("evaluated {evaluated} formula cells");
    for k in 1..=REGIONS {
        println!("  Region {k} total: {:?}", serial.value(summary, Cell::new(1, k as u32)));
    }
    let grand = serial.value(summary, Cell::new(2, 1));
    let chained = serial.value(last_region, Cell::new(3, 1));
    assert_eq!(grand, chained, "summary rollup must equal the cross-sheet chain");
    println!("grand total: {grand:?} (rollup == chain)");

    // Bit-identical across scheduling modes, cell by cell.
    for sid in 0..=REGIONS {
        let id = SheetId(sid);
        for col in 1..=3u32 {
            for row in 1..=rows {
                let cell = Cell::new(col, row);
                assert_eq!(serial.value(id, cell), parallel.value(id, cell), "{id} {cell}");
            }
        }
    }
    println!("serial == parallel across {} cells per sheet", 3 * rows);

    // One upstream edit: dirtiness routes through the workbook.
    let r1 = serial.sheet_id("Region 1").expect("region exists");
    let receipt = serial.set_value(r1, Cell::new(1, 1), Value::Number(1000.0));
    println!(
        "edit Region 1!A1 → {} dirty ranges across {} sheets (control latency {:?})",
        receipt.dirty.len(),
        receipt.sheets_touched(),
        receipt.control_latency
    );
    serial.recalculate(RecalcMode::Parallel { threads: 4 });
    let new_grand = serial.value(summary, Cell::new(2, 1));
    assert_ne!(new_grand, grand, "the edit must move the grand total");
    println!("grand total after edit: {new_grand:?}");
}
