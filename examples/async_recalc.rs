//! The asynchronous execution model (§I): control returns to the user as
//! soon as dependents are identified; recalculation happens in the
//! background. This example measures the control-return path on a long
//! dependency chain — the workload where finding dependents dominates.
//!
//! ```sh
//! cargo run --release --example async_recalc
//! ```

use std::time::Instant;
use taco_repro::engine::AsyncEngine;
use taco_repro::formula::Value;
use taco_repro::grid::{Cell, Range};

/// Chain length: 20 000 by default, overridable for quick smoke runs.
fn rows() -> u32 {
    std::env::var("TACO_EXAMPLE_ROWS").ok().and_then(|s| s.parse().ok()).unwrap_or(20_000).max(3)
}

fn main() {
    let rows = rows();
    let eng = AsyncEngine::spawn();

    println!("building a {rows}-cell running-total chain in the background…");
    eng.set_value(Cell::new(1, 1), Value::Number(1.0));
    eng.set_formula(Cell::new(1, 2), "=A1+1");
    eng.autofill(Cell::new(1, 2), Range::from_coords(1, 3, 1, rows));
    eng.sync();
    assert_eq!(eng.value(Cell::new(1, rows)), Value::Number(f64::from(rows)));
    println!("chain built; A{rows} = {}", eng.value(Cell::new(1, rows)));

    // The interactive edit: the enqueue returns instantly, the worker marks
    // ~20K dependents hidden, then recalculates.
    let t0 = Instant::now();
    eng.set_value(Cell::new(1, 1), Value::Number(100.0));
    let enqueue = t0.elapsed();

    // Immediately keep "using the UI": reads never block.
    let mut stale_reads = 0u32;
    let old = Value::Number(f64::from(rows));
    while eng.value(Cell::new(1, rows)) == old {
        stale_reads += 1;
        if stale_reads > 50_000_000 {
            break;
        }
    }
    let settle = t0.elapsed();

    println!("edit enqueued in {enqueue:?} (control returned to the user)");
    println!(
        "background recalculation settled after {settle:?} ({stale_reads} stale reads served meanwhile)"
    );
    eng.sync();
    assert_eq!(eng.value(Cell::new(1, rows)), Value::Number(99.0 + f64::from(rows)));
    println!("final A{rows} = {}", eng.value(Cell::new(1, rows)));
    println!("recalc rounds: {}", eng.recalc_rounds());
}
