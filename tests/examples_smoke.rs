//! Smoke tests: every example binary must run to completion (exit 0) so
//! the examples can never rot silently. `cargo test` builds the examples
//! alongside the test profile, so the binaries are always present next to
//! this test's executable under `target/<profile>/examples/`.
//!
//! The heavyweight demos (`sales_dashboard`, `async_recalc`) honour
//! `TACO_EXAMPLE_ROWS`, which keeps each smoke run well under a second
//! even in debug builds.

use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

/// `target/<profile>/examples/<name>`, resolved from this test binary's
/// own location (`target/<profile>/deps/examples_smoke-…`).
fn example_path(name: &str) -> PathBuf {
    let mut dir = std::env::current_exe().expect("test binary path");
    dir.pop(); // the test binary itself
    if dir.ends_with("deps") {
        dir.pop();
    }
    let path = dir.join("examples").join(name);
    assert!(path.is_file(), "example binary {path:?} not found — was `{name}` renamed or removed?");
    path
}

fn run_example(name: &str, rows: Option<&str>, stdin: Option<&str>) -> Output {
    let mut cmd = Command::new(example_path(name));
    if let Some(rows) = rows {
        cmd.env("TACO_EXAMPLE_ROWS", rows);
    }
    cmd.stdin(Stdio::piped()).stdout(Stdio::piped()).stderr(Stdio::piped());
    let mut child = cmd.spawn().unwrap_or_else(|e| panic!("spawn {name}: {e}"));
    if let Some(script) = stdin {
        child.stdin.take().expect("piped stdin").write_all(script.as_bytes()).expect("feed stdin");
    } else {
        drop(child.stdin.take());
    }
    let out = child.wait_with_output().unwrap_or_else(|e| panic!("wait for {name}: {e}"));
    assert!(
        out.status.success(),
        "example {name} failed with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        out.status,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn quickstart_runs() {
    let out = run_example("quickstart", None, None);
    let text = stdout_of(&out);
    assert!(text.contains("edges"), "quickstart should report graph sizes:\n{text}");
}

#[test]
fn compression_report_runs() {
    // The synthetic-corpus path (no xlsx argument). The example prints one
    // row per sheet plus a header naming the pattern columns.
    let out = run_example("compression_report", None, None);
    let text = stdout_of(&out);
    assert!(text.contains("RR"), "report should have pattern columns:\n{text}");
    assert!(text.lines().count() >= 2, "report should print at least one sheet:\n{text}");
}

#[test]
fn dependency_audit_runs() {
    let out = run_example("dependency_audit", None, None);
    let text = stdout_of(&out);
    assert!(text.contains("dependents"), "audit should trace dependents:\n{text}");
}

#[test]
fn sales_dashboard_runs_scaled_down() {
    let out = run_example("sales_dashboard", Some("200"), None);
    let text = stdout_of(&out);
    // The example itself asserts TACO and NoComp agree; just confirm it
    // got to the end.
    assert!(text.contains("after recalc"), "dashboard should finish its edit cycle:\n{text}");
}

#[test]
fn async_recalc_runs_scaled_down() {
    let out = run_example("async_recalc", Some("1000"), None);
    let text = stdout_of(&out);
    assert!(text.contains("final A1000"), "async demo should publish the final value:\n{text}");
}

#[test]
fn workbook_report_runs_scaled_down() {
    let out = run_example("workbook_report", Some("60"), None);
    let text = stdout_of(&out);
    assert!(text.contains("grand total:"), "rollup should print a grand total:\n{text}");
    assert!(
        text.contains("serial == parallel"),
        "the two scheduling modes must be compared:\n{text}"
    );
    assert!(text.contains("after edit"), "the edit cycle should complete:\n{text}");
}

#[test]
fn repl_parses_and_evaluates_a_script() {
    let script = "A1 = 2\n\
                  A2 = 3\n\
                  B1 = =SUM(A1:A2)*10\n\
                  show B1\n\
                  trace B1\n\
                  fill B1 B2:B4\n\
                  show B2\n\
                  stats\n\
                  bogus command\n\
                  quit\n";
    let out = run_example("repl", None, Some(script));
    let text = stdout_of(&out);
    assert!(text.contains("B1 = =SUM(A1:A2)*10 → 50"), "formula path broken:\n{text}");
    assert!(text.contains("precedents: A1:A2"), "trace path broken:\n{text}");
    assert!(text.contains("edges="), "stats path broken:\n{text}");
    assert!(text.contains("error:"), "bad input must report, not crash:\n{text}");
}

#[test]
fn repl_saves_and_reopens_a_sheet() {
    let path = std::env::temp_dir().join(format!("taco_repl_smoke_{}.taco", std::process::id()));
    let p = path.display();
    // Build a sheet, save it, wreck the live state, reopen, and show the
    // restored value; also confirm a bad open reports instead of crashing.
    let script = format!(
        "A1 = 5\n\
         B1 = =A1*A1\n\
         show B1\n\
         :save {p}\n\
         clear A1:B1\n\
         show B1\n\
         :open {p}\n\
         show B1\n\
         :open {p}.missing\n\
         quit\n"
    );
    let out = run_example("repl", None, Some(&script));
    std::fs::remove_file(&path).ok();
    let text = stdout_of(&out);
    assert!(text.contains("saved 2 cells"), "save path broken:\n{text}");
    assert!(text.contains("opened 2 cells"), "open path broken:\n{text}");
    // B1 prints 25 before save, empty after clear, 25 again after :open.
    let restored = text.matches("B1 = =A1*A1 → 25").count();
    assert!(restored >= 2, "reopen must restore the formula and value:\n{text}");
    assert!(text.contains("error:"), "missing file must report, not crash:\n{text}");
}

#[test]
fn serve_workbook_runs_a_scripted_tcp_session() {
    let out = run_example("serve_workbook", Some("32"), None);
    let text = stdout_of(&out);
    assert!(text.contains("listening on 127.0.0.1:"), "server must bind:\n{text}");
    assert!(text.contains("rollup before"), "scripted edit cycle missing:\n{text}");
    assert!(text.contains("stats: epoch="), "stats line missing:\n{text}");
    assert!(text.contains("done"), "graceful shutdown missing:\n{text}");
}

#[test]
fn repl_connects_to_a_live_server() {
    use std::io::{BufRead, BufReader};
    // A held-open server the repl can dial.
    let mut server = Command::new(example_path("serve_workbook"))
        .env("TACO_EXAMPLE_ROWS", "16")
        .env("TACO_SERVE_HOLD", "1")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve_workbook");
    // Keep the reader (and the pipe's read end) alive until the server
    // exits — dropping it would EPIPE the server's final prints.
    let mut server_stdout = BufReader::new(server.stdout.take().expect("piped stdout"));
    let mut first_line = String::new();
    server_stdout.read_line(&mut first_line).expect("read listening line");
    let addr = first_line.trim().strip_prefix("listening on ").expect("listening line").to_string();

    // Drive the repl through a remote session against it.
    let script = format!(
        ":connect {addr} demo\n\
         show B16\n\
         A1 = 100\n\
         show B16\n\
         trace A1\n\
         fill C1 C2:C4\n\
         stats\n\
         :metrics\n\
         :trace\n\
         bogus remote command\n\
         :disconnect\n\
         A1 = 7\n\
         show A1\n\
         quit\n"
    );
    let out = run_example("repl", None, Some(&script));
    // Release the server and drain it to exit.
    server.stdin.take().expect("piped stdin").write_all(b"quit\n").expect("signal server");
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut server_stdout, &mut rest).expect("drain server stdout");
    let status = server.wait().expect("server exits");
    assert!(status.success(), "held server must exit cleanly:\n{rest}");
    assert!(rest.contains("done"), "held server must shut down gracefully:\n{rest}");

    let text = stdout_of(&out);
    assert!(text.contains("connected to"), "connect path broken:\n{text}");
    // B16 = SUM(A1:A16) = 136 before, 235 after A1 = 100.
    assert!(text.contains("B16 = 136"), "remote read broken:\n{text}");
    assert!(text.contains("B16 = 235"), "remote write must recalc the rollup:\n{text}");
    assert!(text.contains("dependents: "), "remote trace broken:\n{text}");
    assert!(text.contains("remote stats: epoch="), "remote stats broken:\n{text}");
    // `:metrics` renders the server's hub as Prometheus text over the wire.
    assert!(text.contains("taco_request_ns"), "remote :metrics broken:\n{text}");
    assert!(text.contains("taco_recalcs_total"), "remote :metrics broken:\n{text}");
    // `:trace` reassembles the server's span rings into indented trees.
    assert!(text.contains("tree(s):"), "remote :trace broken:\n{text}");
    assert!(text.contains("workbook.recalc"), "remote :trace must show engine spans:\n{text}");
    // Autofill of an empty source cell must report, not crash.
    assert!(text.contains("error:"), "remote errors must be reported:\n{text}");
    assert!(text.contains("disconnected"), "disconnect path broken:\n{text}");
    // Back on the local engine after :disconnect.
    assert!(text.contains("A1 = 7"), "local mode must resume:\n{text}");
}

#[test]
fn crash_torture_survives_faults_bit_identically() {
    let out = run_example("crash_torture", Some("16"), None);
    let text = stdout_of(&out);
    assert!(text.contains("act 1: flaky disk"), "flaky-disk act missing:\n{text}");
    assert!(text.contains("act 2: hard crash"), "hard-crash act missing:\n{text}");
    assert!(text.contains("fault:"), "the injected-fault log must be visible:\n{text}");
    // Both acts end in the bit-identity proof (the example asserts it
    // internally; the marker must appear once per act).
    assert!(
        text.matches("bit-identical ✔").count() >= 2,
        "each act must prove clean-prefix recovery:\n{text}"
    );
    assert!(text.contains("done"), "example did not finish:\n{text}");
}

#[test]
fn metrics_dashboard_renders_a_snapshot() {
    let out = run_example("metrics_dashboard", Some("24"), None);
    let text = stdout_of(&out);
    assert!(text.contains("listening on 127.0.0.1:"), "server must bind:\n{text}");
    assert!(text.contains("poll 1/"), "polling loop missing:\n{text}");
    assert!(text.contains("p99"), "latency table missing:\n{text}");
    assert!(text.contains("taco_recalc_ns"), "engine histograms missing:\n{text}");
    assert!(text.contains("taco_wal_records_total"), "WAL counters missing:\n{text}");
    assert!(text.contains("prometheus exposition:"), "exposition line missing:\n{text}");
    assert!(text.contains("done"), "graceful shutdown missing:\n{text}");
}

#[test]
fn persist_reopen_round_trips_and_reports_sizes() {
    let out = run_example("persist_reopen", Some("48"), None);
    let text = stdout_of(&out);
    assert!(text.contains("bit-identical"), "reopen verification missing:\n{text}");
    assert!(text.contains("bytes binary"), "size report missing:\n{text}");
    assert!(
        text.contains("burst edits survived the torn tail"),
        "crash-simulated reopen missing:\n{text}"
    );
    assert!(text.contains("done"), "example did not finish:\n{text}");
}
