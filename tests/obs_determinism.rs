//! Observability must be a pure observer: attaching a hub to a workbook
//! changes no recalculation bit, in any mode. Each preset workload is run
//! six ways — {Serial, Parallel, CellParallel} × {obs off, obs on} — and
//! every non-empty cell value must be identical across all six, through a
//! build, a full recalc, an edit burst, and a demand-driven viewport
//! recalc. The instrumented runs must also actually have recorded (the
//! "obs on" leg is not accidentally a no-op).

use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use taco_repro::engine::{ProfileMode, RecalcMode, SheetId, Workbook};
use taco_repro::formula::Value;
use taco_repro::grid::{Cell, Range};
use taco_repro::obs::{Obs, ObsClock, ObsOptions, TraceDump, TracerOptions};
use taco_repro::workload::{
    gen_persist_workload, persist_enron_like, persist_giant_sheet, persist_github_like,
    PersistParams, PersistWorkload,
};

fn presets() -> Vec<PersistParams> {
    vec![
        PersistParams { rows: 32, burst_edits: 40, seed: 7, ..persist_enron_like() },
        PersistParams { rows: 40, burst_edits: 40, seed: 11, ..persist_github_like() },
        PersistParams { rows: 96, burst_edits: 50, seed: 13, ..persist_giant_sheet() },
    ]
}

fn build(w: &PersistWorkload, obs: Option<&Obs>) -> Workbook {
    let mut wb = Workbook::with_taco();
    if let Some(o) = obs {
        wb.attach_obs(o, "det");
    }
    wb.apply_batch(&w.build).expect("build script applies");
    wb
}

/// Every non-empty cell's value, across all sheets, in a fixed order.
fn snapshot(wb: &Workbook) -> Vec<(usize, Cell, Value)> {
    let mut out = Vec::new();
    for s in 0..wb.sheet_count() {
        let mut cells: Vec<(Cell, Value)> =
            wb.sheet(SheetId(s)).cells().map(|(c, k)| (c, k.value().clone())).collect();
        cells.sort_by_key(|(c, _)| *c);
        out.extend(cells.into_iter().map(|(c, v)| (s, c, v)));
    }
    out
}

#[test]
fn observed_recalc_is_bit_identical_in_every_mode() {
    let modes = [
        RecalcMode::Serial,
        RecalcMode::Parallel { threads: 4 },
        RecalcMode::CellParallel { threads: 4 },
    ];
    for p in presets() {
        let w = gen_persist_workload(&p);

        // The unobserved serial run is the reference for everything.
        let mut reference = build(&w, None);
        let eval0 = reference.recalculate(RecalcMode::Serial);
        let after_build = snapshot(&reference);
        reference.apply_batch(&w.burst).expect("burst applies");
        reference.recalculate(RecalcMode::Serial);
        let after_burst = snapshot(&reference);

        for mode in modes {
            for observed in [false, true] {
                let hub = Obs::new(ObsOptions::default());
                let obs = observed.then_some(&*hub);
                let mut wb = build(&w, obs);
                assert!(wb.obs_attached() == observed, "{} {mode:?}", p.name);

                let evaluated = wb.recalculate(mode);
                assert_eq!(evaluated, eval0, "{} {mode:?} obs={observed}", p.name);
                assert_eq!(snapshot(&wb), after_build, "{} {mode:?} obs={observed}", p.name);

                wb.apply_batch(&w.burst).expect("burst applies");
                wb.recalculate(mode);
                assert_eq!(snapshot(&wb), after_burst, "{} {mode:?} obs={observed}", p.name);

                if observed {
                    let snap = hub.snapshot();
                    let recalcs = snap
                        .counters
                        .iter()
                        .filter(|c| c.name == "taco_recalcs_total")
                        .map(|c| c.value)
                        .sum::<u64>();
                    assert!(recalcs >= 2, "instrumented run must have recorded: {snap:?}");
                }
            }
        }
    }
}

#[test]
fn observed_demand_recalc_is_bit_identical() {
    let p = PersistParams { rows: 48, burst_edits: 0, seed: 3, ..persist_github_like() };
    let w = gen_persist_workload(&p);
    let viewport = Range::from_coords(1, 1, 8, 16);

    let mut reference = build(&w, None);
    reference.recalc_demand(SheetId(0), viewport, RecalcMode::Serial).unwrap();
    let want = snapshot(&reference);
    let dirty_left = reference.dirty_count();

    for mode in [RecalcMode::Serial, RecalcMode::CellParallel { threads: 4 }] {
        let hub = Obs::new(ObsOptions::default());
        let mut wb = build(&w, Some(&hub));
        wb.recalc_demand(SheetId(0), viewport, mode).unwrap();
        assert_eq!(snapshot(&wb), want, "{mode:?}");
        assert_eq!(wb.dirty_count(), dirty_left, "laziness must match: {mode:?}");
        let snap = hub.snapshot();
        assert!(
            snap.histograms.iter().any(|h| h.name == "taco_demand_closure_cells" && h.count > 0),
            "demand closure histogram must have recorded"
        );
    }
}

#[test]
fn profiled_recalc_is_bit_identical() {
    // The recalc profiler is an observer too: attributing wall time per
    // level and per hottest cell must change no value in any mode.
    let p = PersistParams { rows: 40, burst_edits: 30, seed: 17, ..persist_enron_like() };
    let w = gen_persist_workload(&p);

    let mut reference = build(&w, None);
    reference.recalculate(RecalcMode::Serial);
    let want = snapshot(&reference);

    for mode in [RecalcMode::Serial, RecalcMode::CellParallel { threads: 4 }] {
        for profile in [ProfileMode::Levels, ProfileMode::Hotspots] {
            let hub = Obs::new(ObsOptions::default());
            let mut wb = build(&w, Some(&hub));
            wb.set_profile(profile);
            wb.recalculate(mode);
            assert_eq!(snapshot(&wb), want, "{mode:?} {profile:?}");

            let report = wb.profile_report();
            assert!(!report.levels.is_empty(), "{mode:?} {profile:?} must attribute levels");
            if profile == ProfileMode::Hotspots {
                assert!(!report.hotspots.is_empty(), "{mode:?} must attribute hot cells");
            }
            let snap = hub.snapshot();
            assert!(
                snap.histograms.iter().any(|h| h.name == "taco_profile_level_ns" && h.count > 0),
                "profiler histograms must have recorded: {mode:?} {profile:?}"
            );
        }
    }
}

/// The span-tree shape of a dump: every record's identity, linkage, and
/// payload — everything except wall time, which a manual clock pins too.
fn tree_shape(dump: &TraceDump) -> Vec<(String, u64, u64, u64, u64, u64, u64)> {
    dump.recent
        .iter()
        .chain(dump.slow.iter())
        .map(|s| (s.name.clone(), s.trace_hi, s.trace_lo, s.span_id, s.parent_id, s.a, s.b))
        .collect()
}

#[test]
fn manual_clock_and_fixed_seed_reproduce_span_trees() {
    // With the clock pinned and the span-id generator seeded, the same
    // script must emit the same span tree — same names, same parent/child
    // edges, same ids, same payloads — run after run.
    let p = PersistParams { rows: 40, burst_edits: 30, seed: 5, ..persist_enron_like() };
    let w = gen_persist_workload(&p);

    let run = || {
        let clock = Arc::new(AtomicU64::new(1_000));
        let hub = Obs::new(ObsOptions {
            tracer: TracerOptions {
                clock: ObsClock::Manual(clock),
                id_seed: 99,
                span_capacity: 4096,
                ..TracerOptions::default()
            },
        });
        let mut wb = build(&w, Some(&hub));
        wb.recalculate(RecalcMode::Serial);
        wb.apply_batch(&w.burst).expect("burst applies");
        wb.recalculate(RecalcMode::Serial);
        wb.recalc_demand(SheetId(0), Range::from_coords(1, 1, 8, 8), RecalcMode::Serial).unwrap();
        hub.tracer.dump()
    };

    let first = run();
    let second = run();
    assert!(first.span_count() > 0, "the script must trace");
    assert_eq!(tree_shape(&first), tree_shape(&second), "span trees must be reproducible");

    // A different seed keeps the shape (names, counts, edges-by-position)
    // but relabels every id — no accidental dependence on the seed value.
    let other = {
        let clock = Arc::new(AtomicU64::new(1_000));
        let hub = Obs::new(ObsOptions {
            tracer: TracerOptions {
                clock: ObsClock::Manual(clock),
                id_seed: 1234,
                span_capacity: 4096,
                ..TracerOptions::default()
            },
        });
        let mut wb = build(&w, Some(&hub));
        wb.recalculate(RecalcMode::Serial);
        wb.apply_batch(&w.burst).expect("burst applies");
        wb.recalculate(RecalcMode::Serial);
        wb.recalc_demand(SheetId(0), Range::from_coords(1, 1, 8, 8), RecalcMode::Serial).unwrap();
        hub.tracer.dump()
    };
    assert_eq!(other.span_count(), first.span_count());
    let names = |d: &TraceDump| -> Vec<String> {
        d.recent.iter().chain(d.slow.iter()).map(|s| s.name.clone()).collect()
    };
    assert_eq!(names(&first), names(&other), "seed must not change which spans exist");
    assert_ne!(tree_shape(&first), tree_shape(&other), "a different seed must relabel span ids");
}
