//! Observability must be a pure observer: attaching a hub to a workbook
//! changes no recalculation bit, in any mode. Each preset workload is run
//! six ways — {Serial, Parallel, CellParallel} × {obs off, obs on} — and
//! every non-empty cell value must be identical across all six, through a
//! build, a full recalc, an edit burst, and a demand-driven viewport
//! recalc. The instrumented runs must also actually have recorded (the
//! "obs on" leg is not accidentally a no-op).

use taco_repro::engine::{RecalcMode, SheetId, Workbook};
use taco_repro::formula::Value;
use taco_repro::grid::{Cell, Range};
use taco_repro::obs::{Obs, ObsOptions};
use taco_repro::workload::{
    gen_persist_workload, persist_enron_like, persist_giant_sheet, persist_github_like,
    PersistParams, PersistWorkload,
};

fn presets() -> Vec<PersistParams> {
    vec![
        PersistParams { rows: 32, burst_edits: 40, seed: 7, ..persist_enron_like() },
        PersistParams { rows: 40, burst_edits: 40, seed: 11, ..persist_github_like() },
        PersistParams { rows: 96, burst_edits: 50, seed: 13, ..persist_giant_sheet() },
    ]
}

fn build(w: &PersistWorkload, obs: Option<&Obs>) -> Workbook {
    let mut wb = Workbook::with_taco();
    if let Some(o) = obs {
        wb.attach_obs(o, "det");
    }
    wb.apply_batch(&w.build).expect("build script applies");
    wb
}

/// Every non-empty cell's value, across all sheets, in a fixed order.
fn snapshot(wb: &Workbook) -> Vec<(usize, Cell, Value)> {
    let mut out = Vec::new();
    for s in 0..wb.sheet_count() {
        let mut cells: Vec<(Cell, Value)> =
            wb.sheet(SheetId(s)).cells().map(|(c, k)| (c, k.value().clone())).collect();
        cells.sort_by_key(|(c, _)| *c);
        out.extend(cells.into_iter().map(|(c, v)| (s, c, v)));
    }
    out
}

#[test]
fn observed_recalc_is_bit_identical_in_every_mode() {
    let modes = [
        RecalcMode::Serial,
        RecalcMode::Parallel { threads: 4 },
        RecalcMode::CellParallel { threads: 4 },
    ];
    for p in presets() {
        let w = gen_persist_workload(&p);

        // The unobserved serial run is the reference for everything.
        let mut reference = build(&w, None);
        let eval0 = reference.recalculate(RecalcMode::Serial);
        let after_build = snapshot(&reference);
        reference.apply_batch(&w.burst).expect("burst applies");
        reference.recalculate(RecalcMode::Serial);
        let after_burst = snapshot(&reference);

        for mode in modes {
            for observed in [false, true] {
                let hub = Obs::new(ObsOptions::default());
                let obs = observed.then_some(&*hub);
                let mut wb = build(&w, obs);
                assert!(wb.obs_attached() == observed, "{} {mode:?}", p.name);

                let evaluated = wb.recalculate(mode);
                assert_eq!(evaluated, eval0, "{} {mode:?} obs={observed}", p.name);
                assert_eq!(snapshot(&wb), after_build, "{} {mode:?} obs={observed}", p.name);

                wb.apply_batch(&w.burst).expect("burst applies");
                wb.recalculate(mode);
                assert_eq!(snapshot(&wb), after_burst, "{} {mode:?} obs={observed}", p.name);

                if observed {
                    let snap = hub.snapshot();
                    let recalcs = snap
                        .counters
                        .iter()
                        .filter(|c| c.name == "taco_recalcs_total")
                        .map(|c| c.value)
                        .sum::<u64>();
                    assert!(recalcs >= 2, "instrumented run must have recorded: {snap:?}");
                }
            }
        }
    }
}

#[test]
fn observed_demand_recalc_is_bit_identical() {
    let p = PersistParams { rows: 48, burst_edits: 0, seed: 3, ..persist_github_like() };
    let w = gen_persist_workload(&p);
    let viewport = Range::from_coords(1, 1, 8, 16);

    let mut reference = build(&w, None);
    reference.recalc_demand(SheetId(0), viewport, RecalcMode::Serial).unwrap();
    let want = snapshot(&reference);
    let dirty_left = reference.dirty_count();

    for mode in [RecalcMode::Serial, RecalcMode::CellParallel { threads: 4 }] {
        let hub = Obs::new(ObsOptions::default());
        let mut wb = build(&w, Some(&hub));
        wb.recalc_demand(SheetId(0), viewport, mode).unwrap();
        assert_eq!(snapshot(&wb), want, "{mode:?}");
        assert_eq!(wb.dirty_count(), dirty_left, "laziness must match: {mode:?}");
        let snap = hub.snapshot();
        assert!(
            snap.histograms.iter().any(|h| h.name == "taco_demand_closure_cells" && h.count > 0),
            "demand closure histogram must have recorded"
        );
    }
}
