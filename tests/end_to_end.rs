//! Cross-crate integration: formulae → parser → engine → formula graph →
//! queries, with every backend agreeing on answers.

use taco_repro::baselines::{Antifreeze, CellGraph, ExcelLike, NoCompCalc};
use taco_repro::core::{Config, DependencyBackend, FormulaGraph};
use taco_repro::engine::Engine;
use taco_repro::formula::Value;
use taco_repro::grid::{Cell, Range};
use taco_repro::workload::generator::{gen_sheet, SheetParams};

fn c(s: &str) -> Cell {
    Cell::parse_a1(s).unwrap()
}

fn r(s: &str) -> Range {
    Range::parse_a1(s).unwrap()
}

fn cells(v: &[Range]) -> std::collections::BTreeSet<Cell> {
    v.iter().flat_map(|x| x.cells()).collect()
}

/// Builds the Fig. 2 spreadsheet through the engine (formula strings all
/// the way) and verifies values, compression, and dependents.
#[test]
fn fig2_workbook_end_to_end() {
    let mut e = Engine::with_taco();
    let rows = 400u32;
    // Column A: sorted group ids. Column M: amounts.
    for row in 2..=rows {
        e.set_value(Cell::new(1, row), Value::Number(f64::from(row / 50)));
        e.set_value(Cell::new(13, row), Value::Number(1.0));
    }
    e.set_formula(c("N2"), "=M2").unwrap();
    e.set_formula(c("N3"), "=IF(A3=A2,N2+M3,M3)").unwrap();
    e.autofill(c("N3"), Range::from_coords(14, 4, 14, rows)).unwrap();
    e.recalculate();

    // Running totals reset at group boundaries (row 50k).
    assert_eq!(e.value(Cell::new(14, 49)), Value::Number(48.0));
    assert_eq!(e.value(Cell::new(14, 50)), Value::Number(1.0));
    assert_eq!(e.value(Cell::new(14, 99)), Value::Number(50.0));

    // The ~1600 dependencies compress to a handful of edges (Fig. 2
    // compresses to 6 compressed edges in the paper's illustration).
    assert!(e.graph().num_edges() <= 8, "got {} edges", e.graph().num_edges());

    // Update one amount: every N at or below that row must be dirty.
    let receipt = e.set_value(Cell::new(13, 100), Value::Number(5.0));
    let dirty: u64 = receipt.dirty.iter().map(Range::area).sum();
    assert_eq!(dirty, u64::from(rows) - 100 + 1);
    e.recalculate();
    // Row 100 starts a new group (100/50 = 2), so N100 resets to M100.
    assert_eq!(e.value(Cell::new(14, 100)), Value::Number(5.0));
    assert_eq!(e.value(Cell::new(14, 101)), Value::Number(6.0));
}

/// All six backends must return the same dependent cell sets on a messy
/// generated sheet.
#[test]
fn all_backends_agree() {
    let params = SheetParams { target_deps: 1_500, max_run: 120, ..Default::default() };
    let sheet = gen_sheet("agree", 99, &params);

    let mut backends: Vec<Box<dyn DependencyBackend>> = vec![
        Box::new(FormulaGraph::taco()),
        Box::new(FormulaGraph::nocomp()),
        Box::new(FormulaGraph::new(Config::taco_in_row())),
        Box::new(NoCompCalc::new()),
        Box::new(CellGraph::new()),
        Box::new(ExcelLike::new()),
        Box::new(Antifreeze::new()),
    ];
    for b in &mut backends {
        for d in &sheet.deps {
            b.add_dependency(d);
        }
    }

    // Probe the interesting cells. Antifreeze may over-approximate (false
    // positives by design), so it is checked for coverage, not equality.
    for &probe in sheet.hot_cells.iter().take(6) {
        let reference = cells(&backends[1].find_dependents(Range::cell(probe)));
        for b in &mut backends[..6] {
            let got = cells(&b.find_dependents(Range::cell(probe)));
            assert_eq!(got, reference, "{} disagrees on {probe}", b.name());
        }
        let af = cells(&backends[6].find_dependents(Range::cell(probe)));
        assert!(af.is_superset(&reference), "Antifreeze missed true dependents at {probe}");
    }
}

/// Maintenance equivalence across backends that support exact clearing.
#[test]
fn clear_column_consistency() {
    let params = SheetParams { target_deps: 800, max_run: 80, ..Default::default() };
    let sheet = gen_sheet("clear", 7, &params);
    let clear = {
        // Clear a column segment through the densest area.
        let d = &sheet.deps[sheet.deps.len() / 2];
        Range::new(d.dep, Cell::new(d.dep.col, d.dep.row + 50))
    };

    let mut taco = FormulaGraph::taco();
    let mut nocomp = FormulaGraph::nocomp();
    let mut calc = NoCompCalc::new();
    for d in &sheet.deps {
        DependencyBackend::add_dependency(&mut taco, d);
        DependencyBackend::add_dependency(&mut nocomp, d);
        calc.add_dependency(d);
    }
    DependencyBackend::clear_cells(&mut taco, clear);
    DependencyBackend::clear_cells(&mut nocomp, clear);
    calc.clear_cells(clear);

    for &probe in sheet.hot_cells.iter().take(4) {
        let a = cells(&DependencyBackend::find_dependents(&mut taco, Range::cell(probe)));
        let b = cells(&DependencyBackend::find_dependents(&mut nocomp, Range::cell(probe)));
        let cc = cells(&calc.find_dependents(Range::cell(probe)));
        assert_eq!(a, b, "taco vs nocomp after clear at {probe}");
        assert_eq!(a, cc, "taco vs calc after clear at {probe}");
    }
}

/// The engine produces identical computed values under TACO and NoComp on
/// a workbook exercising all pattern shapes.
#[test]
fn engine_value_equivalence() {
    let build = |mut e: Engine| {
        for row in 1..=60u32 {
            e.set_value(Cell::new(1, row), Value::Number(f64::from(row)));
        }
        // Derived column.
        e.set_formula(c("B1"), "=A1*2").unwrap();
        e.autofill(c("B1"), r("B2:B60")).unwrap();
        // Cumulative.
        e.set_formula(c("C1"), "=SUM($B$1:B1)").unwrap();
        e.autofill(c("C1"), r("C2:C60")).unwrap();
        // Sliding window.
        e.set_formula(c("D3"), "=AVERAGE(A1:A5)").unwrap();
        e.autofill(c("D3"), r("D4:D56")).unwrap();
        // Chain.
        e.set_formula(c("E1"), "=A1").unwrap();
        e.set_formula(c("E2"), "=E1+1").unwrap();
        e.autofill(c("E2"), r("E3:E60")).unwrap();
        // Fixed lookup.
        e.set_formula(c("F1"), "=MAX($A$1:$A$60)").unwrap();
        e.autofill(c("F1"), r("F2:F20")).unwrap();
        e.recalculate();
        e
    };
    let taco = build(Engine::with_taco());
    let nocomp = build(Engine::with_nocomp());
    for col in 2..=6u32 {
        for row in 1..=60u32 {
            let cell = Cell::new(col, row);
            assert_eq!(taco.value(cell), nocomp.value(cell), "cell {cell}");
        }
    }
    assert!(taco.graph().num_edges() * 10 < nocomp.graph().num_edges());
}

/// Compression bookkeeping survives heavy incremental churn.
#[test]
fn incremental_churn_stays_consistent() {
    let params = SheetParams { target_deps: 600, max_run: 60, ..Default::default() };
    let sheet = gen_sheet("churn", 3, &params);
    let mut taco = FormulaGraph::taco();
    let mut nocomp = FormulaGraph::nocomp();
    for d in &sheet.deps {
        taco.add_dependency(d);
        nocomp.add_dependency(d);
    }
    // Clear and re-add slices repeatedly.
    for i in 0..10u32 {
        let d = sheet.deps[(i as usize * 37) % sheet.deps.len()];
        let seg = Range::new(d.dep, Cell::new(d.dep.col, d.dep.row + 5));
        taco.clear_cells(seg);
        nocomp.clear_cells(seg);
        for dd in sheet.deps.iter().filter(|dd| seg.contains_cell(dd.dep)) {
            taco.add_dependency(dd);
            nocomp.add_dependency(dd);
        }
    }
    let mut got: Vec<(Range, Cell)> =
        taco.decompress_all().into_iter().map(|d| (d.prec, d.dep)).collect();
    let mut want: Vec<(Range, Cell)> =
        nocomp.decompress_all().into_iter().map(|d| (d.prec, d.dep)).collect();
    got.sort();
    got.dedup();
    want.sort();
    want.dedup();
    assert_eq!(got, want);
}
